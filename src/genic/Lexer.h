//===- genic/Lexer.h - Tokenizer for GENIC source --------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#ifndef GENIC_GENIC_LEXER_H
#define GENIC_GENIC_LEXER_H

#include "support/Result.h"

#include <cstdint>
#include <string>
#include <vector>

namespace genic {

enum class TokenKind : unsigned char {
  Ident,
  Number, // decimal integer literal (non-negative; '-' is an operator)
  BvLit,  // #x.. hexadecimal bit-vector literal
  // Keywords.
  KwFun,
  KwTrans,
  KwMatch,
  KwWith,
  KwWhen,
  KwList,
  KwTrue,
  KwFalse,
  KwIsInjective,
  KwInvert,
  // Punctuation.
  LParen,
  RParen,
  Colon,      // :
  Assign,     // :=
  ColonColon, // ::
  Pipe,       // |
  Arrow,      // ->
  LBracket,   // [
  RBracket,   // ]
  // Operators.
  Plus,
  Minus,
  Star,
  Shl,   // <<
  Lshr,  // >>
  Amp,   // &
  Caret, // ^
  Tilde, // ~
  Le,
  Lt,
  Ge,
  Gt,
  EqEq,
  NotEq,
  End,
};

struct Token {
  TokenKind K = TokenKind::End;
  std::string Text;    // Ident spelling
  int64_t Number = 0;  // Number value
  uint64_t BvValue = 0;
  unsigned BvWidth = 0;
  int Line = 1;
};

/// Tokenizes \p Source; `//` comments run to end of line. Errors carry the
/// line number.
Result<std::vector<Token>> lex(const std::string &Source);

/// Human-readable token kind for diagnostics.
const char *tokenKindName(TokenKind K);

} // namespace genic

#endif // GENIC_GENIC_LEXER_H
