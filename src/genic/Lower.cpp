//===- genic/Lower.cpp -----------------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "genic/Lower.h"

#include <map>

using namespace genic;

namespace {

Status errAt(int Line, const std::string &Message) {
  return Status::error("line " + std::to_string(Line) + ": " + Message);
}

/// Maps a surface binary operator spelling and operand type to a theory
/// operator. Comparisons on bit-vectors are unsigned (§3.1 coders use
/// unsigned byte comparisons); signed variants are reachable through the
/// prefix builtins bvsle/bvslt/bvsge/bvsgt.
Result<Op> binaryOp(const std::string &Spelling, const Type &OperandTy,
                    int Line) {
  bool IsInt = OperandTy.isInt();
  bool IsBv = OperandTy.isBitVec();
  auto Mismatch = [&]() {
    return errAt(Line, "operator '" + Spelling + "' is not defined on " +
                           OperandTy.str());
  };
  if (Spelling == "+")
    return IsInt ? Result<Op>(Op::IntAdd)
                 : IsBv ? Result<Op>(Op::BvAdd) : Result<Op>(Mismatch());
  if (Spelling == "-")
    return IsInt ? Result<Op>(Op::IntSub)
                 : IsBv ? Result<Op>(Op::BvSub) : Result<Op>(Mismatch());
  if (Spelling == "*")
    return IsInt ? Result<Op>(Op::IntMul)
                 : IsBv ? Result<Op>(Op::BvMul) : Result<Op>(Mismatch());
  if (Spelling == "<=")
    return IsInt ? Result<Op>(Op::IntLe)
                 : IsBv ? Result<Op>(Op::BvUle) : Result<Op>(Mismatch());
  if (Spelling == "<")
    return IsInt ? Result<Op>(Op::IntLt)
                 : IsBv ? Result<Op>(Op::BvUlt) : Result<Op>(Mismatch());
  if (Spelling == ">=")
    return IsInt ? Result<Op>(Op::IntGe)
                 : IsBv ? Result<Op>(Op::BvUge) : Result<Op>(Mismatch());
  if (Spelling == ">")
    return IsInt ? Result<Op>(Op::IntGt)
                 : IsBv ? Result<Op>(Op::BvUgt) : Result<Op>(Mismatch());
  if (!IsBv)
    return Mismatch();
  if (Spelling == "<<")
    return Op::BvShl;
  if (Spelling == ">>")
    return Op::BvLshr;
  if (Spelling == "&")
    return Op::BvAnd;
  if (Spelling == "|")
    return Op::BvOr;
  if (Spelling == "^")
    return Op::BvXor;
  return Mismatch();
}

/// Prefix builtins usable in application position.
std::optional<Op> prefixBuiltin(const std::string &Name) {
  if (Name == "bvsle")
    return Op::BvSle;
  if (Name == "bvslt")
    return Op::BvSlt;
  if (Name == "bvsge")
    return Op::BvSge;
  if (Name == "bvsgt")
    return Op::BvSgt;
  return std::nullopt;
}

} // namespace

Result<TermRef> genic::lowerExpr(const Expr &E, const LowerEnv &Env,
                                 const std::optional<Type> &Hint) {
  TermFactory &F = *Env.F;
  switch (E.K) {
  case Expr::Kind::IntLit:
    if (Hint && Hint->isBitVec()) {
      if (E.IntValue < 0)
        return errAt(E.Line, "negative bit-vector literal");
      return F.mkBv(static_cast<uint64_t>(E.IntValue), Hint->width());
    }
    return F.mkInt(E.IntValue);
  case Expr::Kind::BvLit: {
    unsigned Width = E.BvWidth;
    // A #x literal narrower than the context widens (Figure 2 writes #x04
    // for a byte); wider literals are an error.
    if (Hint && Hint->isBitVec()) {
      if (Hint->width() < Width && (E.BvValue >> Hint->width()) != 0)
        return errAt(E.Line, "bit-vector literal does not fit the context");
      Width = Hint->width();
    }
    return F.mkBv(E.BvValue, Width);
  }
  case Expr::Kind::BoolLit:
    return F.mkBool(E.BoolValue);
  case Expr::Kind::Ident: {
    for (const auto &[Name, Binding] : Env.Vars)
      if (Name == E.Name)
        return F.mkVar(Binding.first, Binding.second, Name);
    return errAt(E.Line, "unknown identifier '" + E.Name + "'");
  }
  case Expr::Kind::Unary: {
    Result<TermRef> Operand = lowerExpr(*E.Args[0], Env, Hint);
    if (!Operand)
      return Operand;
    const Type &Ty = (*Operand)->type();
    if (E.Name == "-") {
      if (Ty.isInt())
        return F.mkIntOp(Op::IntNeg, *Operand);
      if (Ty.isBitVec())
        return F.mkBvOp(Op::BvNeg, *Operand);
      return errAt(E.Line, "unary '-' on " + Ty.str());
    }
    if (Ty.isBitVec())
      return F.mkBvOp(Op::BvNot, *Operand);
    return errAt(E.Line, "'~' on " + Ty.str());
  }
  case Expr::Kind::Binary: {
    bool IsComparison = E.Name == "==" || E.Name == "!=" || E.Name == "<=" ||
                        E.Name == "<" || E.Name == ">=" || E.Name == ">";
    std::optional<Type> ChildHint = IsComparison ? std::nullopt : Hint;
    Result<TermRef> L = lowerExpr(*E.Args[0], Env, ChildHint);
    if (!L)
      return L;
    Result<TermRef> R = lowerExpr(*E.Args[1], Env,
                                  ChildHint ? ChildHint
                                            : std::optional<Type>(
                                                  (*L)->type()));
    if (!R)
      return R;
    // Coerce a decimal literal operand to the other side's bit-vector type.
    auto Recoerce = [&](Result<TermRef> &Side, const Expr &Ast,
                        const Type &Want) -> Status {
      if ((*Side)->type() == Want)
        return Status::ok();
      if (Ast.K == Expr::Kind::IntLit && Want.isBitVec()) {
        Result<TermRef> Again = lowerExpr(Ast, Env, Want);
        if (!Again)
          return Again.status();
        Side = Again;
        return Status::ok();
      }
      return errAt(E.Line, "operand types " + (*L)->type().str() + " and " +
                               (*R)->type().str() + " do not match");
    };
    if ((*L)->type() != (*R)->type()) {
      if (Status St = Recoerce(L, *E.Args[0], (*R)->type()); !St.isOk())
        return St;
      if (Status St = Recoerce(R, *E.Args[1], (*L)->type()); !St.isOk())
        return St;
    }
    const Type &Ty = (*L)->type();
    if (E.Name == "==" || E.Name == "!=") {
      TermRef Eq = Ty.isBool() ? F.mkIff(*L, *R) : F.mkEq(*L, *R);
      return E.Name == "==" ? Eq : F.mkNot(Eq);
    }
    Result<Op> O = binaryOp(E.Name, Ty, E.Line);
    if (!O)
      return O.status();
    return Ty.isInt() ? F.mkIntOp(*O, *L, *R) : F.mkBvOp(*O, *L, *R);
  }
  case Expr::Kind::Apply: {
    // Boolean structure builtins.
    if (E.Name == "and" || E.Name == "or") {
      std::vector<TermRef> Parts;
      for (const ExprPtr &A : E.Args) {
        Result<TermRef> P = lowerExpr(*A, Env, Type::boolTy());
        if (!P)
          return P;
        if (!(*P)->type().isBool())
          return errAt(E.Line, "'" + E.Name + "' needs boolean operands");
        Parts.push_back(*P);
      }
      return E.Name == "and" ? F.mkAnd(std::move(Parts))
                             : F.mkOr(std::move(Parts));
    }
    if (E.Name == "not") {
      if (E.Args.size() != 1)
        return errAt(E.Line, "'not' takes one operand");
      Result<TermRef> P = lowerExpr(*E.Args[0], Env, Type::boolTy());
      if (!P)
        return P;
      if (!(*P)->type().isBool())
        return errAt(E.Line, "'not' needs a boolean operand");
      return F.mkNot(*P);
    }
    if (E.Name == "ite") {
      if (E.Args.size() != 3)
        return errAt(E.Line, "'ite' takes three operands");
      Result<TermRef> C = lowerExpr(*E.Args[0], Env, Type::boolTy());
      if (!C)
        return C;
      if (!(*C)->type().isBool())
        return errAt(E.Line, "'ite' condition must be boolean");
      Result<TermRef> T = lowerExpr(*E.Args[1], Env, Hint);
      if (!T)
        return T;
      Result<TermRef> El =
          lowerExpr(*E.Args[2], Env, std::optional<Type>((*T)->type()));
      if (!El)
        return El;
      if ((*T)->type() != (*El)->type())
        return errAt(E.Line, "'ite' branches have different types");
      return F.mkIte(*C, *T, *El);
    }
    if (std::optional<Op> O = prefixBuiltin(E.Name)) {
      if (E.Args.size() != 2)
        return errAt(E.Line, "'" + E.Name + "' takes two operands");
      Result<TermRef> L = lowerExpr(*E.Args[0], Env, std::nullopt);
      if (!L)
        return L;
      Result<TermRef> R =
          lowerExpr(*E.Args[1], Env, std::optional<Type>((*L)->type()));
      if (!R)
        return R;
      if (!(*L)->type().isBitVec() || (*L)->type() != (*R)->type())
        return errAt(E.Line, "'" + E.Name + "' needs same-width bit-vectors");
      return F.mkBvOp(*O, *L, *R);
    }
    const FuncDef *Fn = F.lookupFunc(E.Name);
    if (!Fn)
      return errAt(E.Line, "unknown function '" + E.Name + "'");
    if (E.Args.size() != Fn->arity())
      return errAt(E.Line, "'" + E.Name + "' expects " +
                               std::to_string(Fn->arity()) + " arguments");
    std::vector<TermRef> Args;
    for (size_t I = 0, N = E.Args.size(); I != N; ++I) {
      Result<TermRef> A =
          lowerExpr(*E.Args[I], Env, std::optional<Type>(Fn->ParamTypes[I]));
      if (!A)
        return A;
      if ((*A)->type() != Fn->ParamTypes[I])
        return errAt(E.Line, "argument " + std::to_string(I) + " of '" +
                                 E.Name + "' has type " +
                                 (*A)->type().str() + ", expected " +
                                 Fn->ParamTypes[I].str());
      Args.push_back(*A);
    }
    return F.mkCall(Fn, std::move(Args));
  }
  }
  return Status::error("unhandled expression kind");
}

Result<LoweredProgram> genic::lowerProgram(TermFactory &F,
                                           const AstProgram &P,
                                           const std::string &Entry) {
  // Auxiliary functions first (they may reference earlier ones).
  std::vector<const FuncDef *> Aux;
  for (const AstFun &Fun : P.Funs) {
    if (F.lookupFunc(Fun.Name))
      return errAt(Fun.Line, "duplicate function '" + Fun.Name + "'");
    LowerEnv Env;
    Env.F = &F;
    std::vector<Type> ParamTypes;
    for (unsigned I = 0; I < Fun.Params.size(); ++I) {
      Env.Vars.push_back(
          {Fun.Params[I].Name, {I, Fun.Params[I].Ty}});
      ParamTypes.push_back(Fun.Params[I].Ty);
    }
    std::vector<TermRef> Domains;
    for (const AstParam &Param : Fun.Params) {
      if (!Param.Domain)
        continue;
      Result<TermRef> D = lowerExpr(*Param.Domain, Env, Type::boolTy());
      if (!D)
        return D.status();
      if (!(*D)->type().isBool())
        return errAt(Param.Line, "parameter domain must be boolean");
      Domains.push_back(*D);
    }
    Result<TermRef> Body = lowerExpr(*Fun.Body, Env, std::nullopt);
    if (!Body)
      return Body.status();
    TermRef Domain =
        Domains.empty() ? nullptr : F.mkAnd(std::move(Domains));
    Aux.push_back(F.makeFunc(Fun.Name, std::move(ParamTypes),
                             (*Body)->type(), *Body, Domain));
  }

  if (P.Transes.empty())
    return Status::error("program has no transformations");

  // Determine the entry transformation.
  std::string EntryName = Entry;
  bool WantsInjective = false, WantsInvert = false;
  for (const AstOp &O : P.Ops) {
    if (EntryName.empty())
      EntryName = O.Target;
    if (O.Target != EntryName && Entry.empty())
      return errAt(O.Line, "operations target different transformations");
    if (O.K == AstOp::Kind::IsInjective)
      WantsInjective = true;
    else
      WantsInvert = true;
  }
  if (EntryName.empty())
    EntryName = P.Transes.front().Name;

  // State numbering and shared types.
  std::map<std::string, unsigned> StateOf;
  for (const AstTrans &T : P.Transes) {
    if (StateOf.count(T.Name))
      return errAt(T.Line, "duplicate transformation '" + T.Name + "'");
    StateOf[T.Name] = StateOf.size();
  }
  if (!StateOf.count(EntryName))
    return Status::error("unknown entry transformation '" + EntryName + "'");
  Type InputType = P.Transes.front().InputType;
  Type OutputType = P.Transes.front().OutputType;
  for (const AstTrans &T : P.Transes)
    if (T.InputType != InputType || T.OutputType != OutputType)
      return errAt(T.Line,
                   "all transformations must share input/output types");

  LoweredProgram Out{
      Seft(P.Transes.size(), StateOf[EntryName], InputType, OutputType),
      std::move(Aux),
      {},
      EntryName,
      WantsInjective,
      WantsInvert};
  Out.StateNames.resize(P.Transes.size());
  for (const auto &[Name, Index] : StateOf)
    Out.StateNames[Index] = Name;

  for (const AstTrans &T : P.Transes) {
    for (const AstRule &R : T.Rules) {
      LowerEnv Env;
      Env.F = &F;
      for (unsigned I = 0; I < R.Vars.size(); ++I) {
        for (const auto &[Seen, Binding] : Env.Vars) {
          (void)Binding;
          if (Seen == R.Vars[I])
            return errAt(R.Line, "duplicate pattern variable '" + Seen + "'");
        }
        Env.Vars.push_back({R.Vars[I], {I, InputType}});
      }
      Result<TermRef> Guard = lowerExpr(*R.Guard, Env, Type::boolTy());
      if (!Guard)
        return Guard.status();
      if (!(*Guard)->type().isBool())
        return errAt(R.Line, "rule guard must be boolean");

      SeftTransition NT;
      NT.From = StateOf[T.Name];
      NT.Lookahead = R.Vars.size();
      std::vector<TermRef> GuardParts{*Guard, F.calleeDomains(*Guard)};
      for (const ExprPtr &O : R.Outputs) {
        Result<TermRef> OutTerm =
            lowerExpr(*O, Env, std::optional<Type>(OutputType));
        if (!OutTerm)
          return OutTerm.status();
        if ((*OutTerm)->type() != OutputType)
          return errAt(R.Line, "rule output has type " +
                                   (*OutTerm)->type().str() + ", expected " +
                                   OutputType.str());
        GuardParts.push_back(F.calleeDomains(*OutTerm));
        NT.Outputs.push_back(*OutTerm);
      }
      NT.Guard = F.mkAnd(std::move(GuardParts));
      if (R.Continue.empty()) {
        NT.To = Seft::FinalState;
      } else {
        auto It = StateOf.find(R.Continue);
        if (It == StateOf.end())
          return errAt(R.Line, "unknown transformation '" + R.Continue +
                                   "' in recursive call");
        NT.To = It->second;
      }
      Out.Machine.addTransition(std::move(NT));
    }
  }
  return Out;
}
