//===- genic/ProgramPrinter.h - Emit s-EFTs as GENIC source ---------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an s-EFT (plus auxiliary function definitions) as a GENIC
/// program — this is how inverted programs are delivered to the user
/// (Figure 3). The emitted text re-parses and re-lowers to an equivalent
/// machine, which the round-trip tests check, and its byte size is the
/// metric of Figure 6.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_GENIC_PROGRAMPRINTER_H
#define GENIC_GENIC_PROGRAMPRINTER_H

#include "term/Term.h"
#include "transducer/Seft.h"

#include <string>
#include <vector>

namespace genic {

/// Renders \p T as a GENIC surface expression with Var(i) shown as
/// \p VarNames[i]. Boolean structure prints prefix ("(and a b)"), the rest
/// infix, fully parenthesized.
std::string printGenicExpr(TermRef T, const std::vector<std::string> &VarNames);

/// Options for program emission.
struct PrintOptions {
  /// Names for the machine's states; generated names are used if empty.
  std::vector<std::string> StateNames;
  /// Emit `isInjective`/`invert` operations for the entry transformation.
  bool EmitOps = false;
};

/// Renders the machine (and the auxiliary functions it uses) as a complete
/// GENIC program whose entry transformation is the machine's initial state.
std::string printGenicProgram(const Seft &Machine,
                              const std::vector<const FuncDef *> &AuxFuncs,
                              const PrintOptions &Options = PrintOptions());

} // namespace genic

#endif // GENIC_GENIC_PROGRAMPRINTER_H
