//===- genic/Genic.cpp -------------------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "genic/Genic.h"

#include "genic/Parser.h"
#include "genic/ProgramPrinter.h"
#include "support/Timer.h"

using namespace genic;

GenicTool::GenicTool(InverterOptions Options) : Options(Options) {}

GenicTool::~GenicTool() = default;

Result<GenicReport> GenicTool::run(const std::string &Source,
                                   bool ForceInjectivity, bool ForceInvert) {
  TermFactory &Factory = Ctx.factory();
  Solver &Slv = Ctx.solver();
  Result<AstProgram> Ast = parseGenic(Source);
  if (!Ast)
    return Ast.status();
  Result<LoweredProgram> Lowered = lowerProgram(Factory, *Ast);
  if (!Lowered)
    return Lowered.status();
  LoweredProgram &P = *Lowered;

  GenicReport Report;
  Report.EntryName = P.EntryName;
  Report.NumStates = P.Machine.numStates();
  Report.NumTransitions = P.Machine.transitions().size();
  Report.NumAuxFuncs = P.AuxFuncs.size();
  Report.MaxLookahead = P.Machine.lookahead();
  Report.SourceBytes = Source.size();
  Report.Theory = P.Machine.inputType().str();
  Report.Machine = P.Machine;

  // One pool of warm worker sessions serves the determinism check and
  // every phase of the injectivity check. Sessions fork the shared factory
  // copy-on-write, so the program's terms are readable in every session
  // without cloning (exports stay data-only, see SolverSessionPool.h).
  SolverSessionPool Sessions(Factory, Slv.timeoutMs());

  // GENIC requires programs to be deterministic (§3.3): the determinism
  // check always runs.
  {
    Timer T;
    DeterminismOptions DetOpts;
    DetOpts.Jobs = Options.Jobs;
    DetOpts.Sessions = &Sessions;
    Result<std::optional<DeterminismViolation>> Det =
        checkDeterminism(P.Machine, Slv, DetOpts);
    Report.DeterminismSeconds = T.seconds();
    if (!Det)
      return Det.status();
    Report.Deterministic = !Det->has_value();
    if (Det->has_value())
      Report.DeterminismDetail =
          "rules " + std::to_string((*Det)->TransitionA) + " and " +
          std::to_string((*Det)->TransitionB) + " overlap on " +
          toString((*Det)->Symbols) + ": " + (*Det)->Reason;
  }

  if (P.WantsInjective || ForceInjectivity) {
    Timer T;
    InjectivityOptions InjOpts;
    InjOpts.Jobs = Options.Jobs;
    InjOpts.Sessions = &Sessions;
    Result<InjectivityResult> Inj = checkInjectivity(P.Machine, Slv, InjOpts);
    Report.InjectivitySeconds = T.seconds();
    if (!Inj)
      return Inj.status();
    Report.Injectivity = *Inj;
  }

  if (P.WantsInvert || ForceInvert) {
    Timer T;
    Inverter Inv(Slv, Options);
    Result<InversionOutcome> Out = Inv.invert(P.Machine, P.AuxFuncs);
    Report.InversionSeconds = T.seconds();
    if (!Out)
      return Out.status();
    Report.Inversion = *Out;
    Report.InverseMachine = Out->Inverse;
    Report.SygusCalls = Inv.engine().calls();
    Report.WorkerStats = Inv.workerStats();
    Report.EvalStats = Inv.engine().evalCache().stats();
    Report.BankReuseHits = Inv.engine().bankStore().stats().ReuseHits;
    Report.BankReuseMisses = Inv.engine().bankStore().stats().ReuseMisses;

    // Emit the inverse as GENIC source (Figure 3). The synthesized inverse
    // auxiliary functions print first, making the program read naturally.
    PrintOptions PO;
    for (const std::string &Name : P.StateNames)
      PO.StateNames.push_back(Name + "_inv");
    std::vector<const FuncDef *> Aux = Inv.synthesizedAux();
    Report.InverseSource = printGenicProgram(Out->Inverse, Aux, PO);
    Report.InverseSourceBytes = Report.InverseSource.size();
  }
  Report.SolverStats = Slv.stats();
  Report.CheckerSessions = Sessions.sessions();
  Report.CheckerStats = Sessions.solverStats();
  return Report;
}
