//===- genic/Genic.cpp -------------------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "genic/Genic.h"

#include "genic/Parser.h"
#include "genic/ProgramPrinter.h"
#include "support/Trace.h"

#include <cassert>
#include <cstdio>
#include <exception>
#include <iterator>
#include <sstream>

using namespace genic;

GenicTool::GenicTool(InverterOptions Options) : Options(Options) {}

GenicTool::~GenicTool() = default;

Result<GenicReport> GenicTool::run(const std::string &Source,
                                   bool ForceInjectivity, bool ForceInvert) {
  TermFactory &Factory = Ctx.factory();
  Solver &Slv = Ctx.solver();

  // The whole-run span: its stopwatch feeds Timings.TotalSeconds, and in a
  // traced run it is the root every phase span nests under.
  TraceSpan RunSpan("genic.run");

  // Install the run-wide control: a fresh deadline token (the budget is
  // per run, not per tool) plus the fault plan and the metrics registry
  // query latencies are observed into. Every session the run creates —
  // pooled checkers, per-rule forks — copies this control.
  Registry.reset();
  SolverControl Ctl;
  if (BudgetSeconds > 0)
    Ctl.Cancel = CancellationToken(Deadline::after(BudgetSeconds));
  Ctl.Faults = Faults;
  Ctl.Metrics = &Registry;
  Ctl.Kind = SolverSessionKind::Shared;
  Ctl.Incremental = Options.SolverIncremental;
  Slv.setControl(Ctl);

  Result<AstProgram> Ast = parseGenic(Source);
  if (!Ast)
    return Ast.status();
  Result<LoweredProgram> Lowered = lowerProgram(Factory, *Ast);
  if (!Lowered)
    return Lowered.status();
  LoweredProgram &P = *Lowered;

  GenicReport Report;
  Report.EntryName = P.EntryName;
  Report.NumStates = P.Machine.numStates();
  Report.NumTransitions = P.Machine.transitions().size();
  Report.NumAuxFuncs = P.AuxFuncs.size();
  Report.MaxLookahead = P.Machine.lookahead();
  Report.SourceBytes = Source.size();
  Report.Theory = P.Machine.inputType().str();
  Report.Machine = P.Machine;

  Report.InjectivityRequested = P.WantsInjective || ForceInjectivity;
  Report.InversionRequested = P.WantsInvert || ForceInvert;

  // One pool of warm worker sessions serves the determinism check and
  // every phase of the injectivity check. Sessions fork the shared factory
  // copy-on-write, so the program's terms are readable in every session
  // without cloning (exports stay data-only, see SolverSessionPool.h);
  // they also inherit this run's deadline and fault plan.
  SolverSessionPool Sessions(Factory, Slv);

  // Classifies a phase failure: budget and solver-error statuses degrade
  // the run (the partial report is still emitted, later phases are
  // skipped); anything else propagates as a plain error like before.
  bool DegradedRun = false;
  auto Degrade = [&Report, &DegradedRun](const Status &St,
                                         GenicReport::PhaseOutcome &Slot,
                                         const char *Phase) -> bool {
    switch (St.code()) {
    case StatusCode::Timeout:
    case StatusCode::Cancelled:
      Slot = GenicReport::PhaseOutcome::Timeout;
      break;
    case StatusCode::SolverError:
      Slot = GenicReport::PhaseOutcome::SolverError;
      break;
    default:
      return false;
    }
    if (!DegradedRun)
      Report.DegradeDetail = std::string(Phase) + ": " + St.message();
    DegradedRun = true;
    return true;
  };

  // GENIC requires programs to be deterministic (§3.3): the determinism
  // check always runs. The try/catch converts worker exceptions re-raised
  // by ThreadPool::wait (e.g. an injected z3 fault in a parallel scan)
  // into a classified status instead of tearing the process down.
  {
    TraceSpan T("phase.determinism");
    Result<std::optional<DeterminismViolation>> Det =
        [&]() -> Result<std::optional<DeterminismViolation>> {
      try {
        DeterminismOptions DetOpts;
        DetOpts.Jobs = Options.Jobs;
        DetOpts.Sessions = &Sessions;
        return checkDeterminism(P.Machine, Slv, DetOpts);
      } catch (const std::exception &Ex) {
        return Status::solverError(std::string("worker exception: ") +
                                   Ex.what());
      }
    }();
    Report.Timings.DeterminismSeconds = T.seconds();
    if (!Det) {
      if (!Degrade(Det.status(), Report.DeterminismPhase,
                   "determinism check"))
        return Det.status();
    } else {
      Report.DeterminismPhase = GenicReport::PhaseOutcome::Ok;
      Report.Deterministic = !Det->has_value();
      if (Det->has_value())
        Report.DeterminismDetail =
            "rules " + std::to_string((*Det)->TransitionA) + " and " +
            std::to_string((*Det)->TransitionB) + " overlap on " +
            toString((*Det)->Symbols) + ": " + (*Det)->Reason;
    }
  }

  if (Report.InjectivityRequested && !DegradedRun) {
    TraceSpan T("phase.injectivity");
    Result<InjectivityResult> Inj = [&]() -> Result<InjectivityResult> {
      try {
        InjectivityOptions InjOpts;
        InjOpts.Jobs = Options.Jobs;
        InjOpts.Sessions = &Sessions;
        return checkInjectivity(P.Machine, Slv, InjOpts);
      } catch (const std::exception &Ex) {
        return Status::solverError(std::string("worker exception: ") +
                                   Ex.what());
      }
    }();
    Report.Timings.InjectivitySeconds = T.seconds();
    if (!Inj) {
      if (!Degrade(Inj.status(), Report.InjectivityPhase,
                   "injectivity check"))
        return Inj.status();
    } else {
      Report.InjectivityPhase = GenicReport::PhaseOutcome::Ok;
      Report.Injectivity = *Inj;
    }
  }

  if (Report.InversionRequested && !DegradedRun) {
    TraceSpan T("phase.inversion");
    Inverter Inv(Slv, Options);
    Result<InversionOutcome> Out = [&]() -> Result<InversionOutcome> {
      try {
        return Inv.invert(P.Machine, P.AuxFuncs);
      } catch (const std::exception &Ex) {
        return Status::solverError(std::string("worker exception: ") +
                                   Ex.what());
      }
    }();
    Report.Timings.InversionSeconds = T.seconds();
    if (!Out) {
      if (!Degrade(Out.status(), Report.InversionPhase, "inversion"))
        return Out.status();
    } else {
      Report.InversionPhase = GenicReport::PhaseOutcome::Ok;
      Report.Inversion = *Out;
      Report.InverseMachine = Out->Inverse;
      Report.SygusCalls = Inv.engine().calls();
      Report.WorkerStats = Inv.workerStats();
      Report.EvalStats = Inv.engine().evalCache().stats();
      Report.BankReuseHits = Inv.engine().bankStore().stats().ReuseHits;
      Report.BankReuseMisses = Inv.engine().bankStore().stats().ReuseMisses;

      // Emit the inverse as GENIC source (Figure 3). The synthesized
      // inverse auxiliary functions print first, making the program read
      // naturally.
      PrintOptions PO;
      for (const std::string &Name : P.StateNames)
        PO.StateNames.push_back(Name + "_inv");
      std::vector<const FuncDef *> Aux = Inv.synthesizedAux();
      Report.InverseSource = printGenicProgram(Out->Inverse, Aux, PO);
      Report.InverseSourceBytes = Report.InverseSource.size();
    }
  }

  // Every error path above returns through here with all leases back in
  // the pool: workers hold leases only inside their task bodies, and
  // ThreadPool re-raises after the pool drains.
  assert(Sessions.outstandingLeases() == 0 &&
         "worker session leases must be RAII-returned on every path");

  Report.SolverStats = Slv.stats();
  Report.CheckerSessions = Sessions.sessions();
  Report.CheckerStats = Sessions.solverStats();

  // Robustness accounting across all sessions of the run.
  Solver::Stats Total = Report.SolverStats;
  Total += Report.CheckerStats;
  Total += Report.WorkerStats.Smt;
  Report.RetriesAttempted = Total.Retries;
  Report.QueriesTimedOut = Total.QueryTimeouts;
  Report.QueriesCancelled = Total.QueriesCancelled;
  Report.InjectedFaults = Total.InjectedFaults;
  if (Report.Inversion)
    Report.RulesDegraded = Report.Inversion->degradedRules();
  Report.DeadlineExpired = Ctl.Cancel.active() && Ctl.Cancel.cancelled();
  Report.Timings.DeadlineRemainingSeconds =
      Ctl.Cancel.active() ? Ctl.Cancel.remainingSeconds() : -1;
  Report.Timings.TotalSeconds = RunSpan.seconds();

  // Mirror the report's counter fields into the registry so --metrics-json
  // and the bench harness read everything from one place. The cache
  // counters are aggregated here, at run end, to keep the per-lookup hot
  // paths free of registry traffic; only the query-latency histograms are
  // recorded live (at the solver chokepoint).
  auto RecordSolver = [this](const std::string &Prefix,
                             const Solver::Stats &S) {
    auto C = [&](const char *Name, uint64_t V) {
      Registry.counter(Prefix + Name).set(V);
    };
    C(".sat_queries", S.SatQueries);
    C(".qe_calls", S.QeCalls);
    C(".qe_fallbacks", S.QeFallbacks);
    C(".cache.sat.hits", S.CacheHits);
    C(".cache.sat.misses", S.CacheMisses);
    C(".cache.sat.evictions", S.CacheEvictions);
    C(".cache.model.hits", S.ModelCacheHits);
    C(".cache.model.misses", S.ModelCacheMisses);
    C(".cache.model.evictions", S.ModelCacheEvictions);
    C(".cache.proj.hits", S.ProjCacheHits);
    C(".cache.proj.misses", S.ProjCacheMisses);
    C(".cache.proj.evictions", S.ProjCacheEvictions);
    C(".retries", S.Retries);
    C(".query_timeouts", S.QueryTimeouts);
    C(".queries_cancelled", S.QueriesCancelled);
    C(".injected_faults", S.InjectedFaults);
    C(".scope.pushes", S.ScopePushes);
    C(".scope.pops", S.ScopePops);
    C(".assumption.batches", S.AssumptionBatches);
    C(".assumption.literals", S.AssumptionLiterals);
    C(".incremental.hits", S.IncrementalHits);
    C(".incremental.full_restarts", S.FullRestarts);
    C(".cache.scoped.hits", S.ScopedCacheHits);
    C(".cache.scoped.misses", S.ScopedCacheMisses);
    C(".cache.scoped.evictions", S.ScopedCacheEvictions);
  };
  RecordSolver("solver.shared", Report.SolverStats);
  RecordSolver("solver.checker", Report.CheckerStats);
  RecordSolver("solver.worker", Report.WorkerStats.Smt);
  auto RecordEval = [this](const std::string &Prefix,
                           const CompiledEvalCache::Stats &E) {
    Registry.counter(Prefix + ".lookups").set(E.Lookups);
    Registry.counter(Prefix + ".compiles").set(E.Compiles);
    Registry.counter(Prefix + ".evals").set(E.Evals);
  };
  RecordEval("eval.shared", Report.EvalStats);
  RecordEval("eval.worker", Report.WorkerStats.Eval);
  Registry.counter("bank.shared.reuse_hits").set(Report.BankReuseHits);
  Registry.counter("bank.shared.reuse_misses").set(Report.BankReuseMisses);
  Registry.counter("bank.worker.reuse_hits")
      .set(Report.WorkerStats.BankReuseHits);
  Registry.counter("bank.worker.reuse_misses")
      .set(Report.WorkerStats.BankReuseMisses);
  Registry.counter("worker.clone_in_nodes")
      .set(Report.WorkerStats.CloneInNodes);
  Registry.counter("worker.clone_out_nodes")
      .set(Report.WorkerStats.CloneOutNodes);
  Registry.gauge("sessions.checker").set(Report.CheckerSessions);
  Registry.gauge("sessions.worker").set(Report.WorkerStats.Sessions);
  Registry.counter("sygus.calls").set(Report.SygusCalls.size());
  Registry.counter("run.retries_attempted").set(Report.RetriesAttempted);
  Registry.counter("run.queries_timed_out").set(Report.QueriesTimedOut);
  Registry.counter("run.queries_cancelled").set(Report.QueriesCancelled);
  Registry.counter("run.injected_faults").set(Report.InjectedFaults);
  Registry.gauge("run.rules_degraded").set(Report.RulesDegraded);
  Registry.gauge("run.deadline_expired").set(Report.DeadlineExpired ? 1 : 0);
  return Report;
}

std::string genic::formatOutcomeReport(const GenicReport &Report) {
  std::ostringstream Out;
  auto Phase = [&](const char *Name, GenicReport::PhaseOutcome O,
                   const std::string &Verdict) {
    Out << "  " << Name << ": ";
    switch (O) {
    case GenicReport::PhaseOutcome::NotRun:
      Out << "not run";
      break;
    case GenicReport::PhaseOutcome::Ok:
      Out << Verdict;
      break;
    case GenicReport::PhaseOutcome::Timeout:
      Out << "timeout";
      break;
    case GenicReport::PhaseOutcome::SolverError:
      Out << "solver error";
      break;
    }
    Out << "\n";
  };

  Out << "outcome report for " << Report.EntryName << "\n";
  Phase("determinism", Report.DeterminismPhase,
        Report.Deterministic
            ? "deterministic"
            : "nondeterministic (" + Report.DeterminismDetail + ")");
  if (Report.InjectivityRequested || Report.Injectivity) {
    std::string Verdict = "-";
    if (Report.Injectivity)
      Verdict = Report.Injectivity->Injective
                    ? "injective"
                    : "not injective" +
                          (Report.Injectivity->Detail.empty()
                               ? std::string()
                               : " (" + Report.Injectivity->Detail + ")");
    Phase("injectivity", Report.InjectivityPhase, Verdict);
  }
  if (Report.InversionRequested || Report.Inversion) {
    std::string Verdict = "-";
    if (Report.Inversion) {
      size_t Total = Report.Inversion->Records.size();
      size_t Done = 0;
      for (const RuleInversionRecord &R : Report.Inversion->Records)
        Done += R.Inverted;
      Verdict = std::to_string(Done) + "/" + std::to_string(Total) +
                " rules inverted";
    }
    Phase("inversion", Report.InversionPhase, Verdict);
    if (Report.Inversion)
      for (const RuleInversionRecord &R : Report.Inversion->Records) {
        Out << "    rule " << R.Rule << ": " << toString(R.Outcome);
        if (R.Retries)
          Out << " (retries " << R.Retries << ")";
        if (!R.Error.empty())
          Out << " — " << R.Error;
        Out << "\n";
      }
  }
  if (!Report.DegradeDetail.empty())
    Out << "  degraded: " << Report.DegradeDetail << "\n";
  if (Report.DeadlineExpired)
    Out << "  global deadline exhausted\n";
  return Out.str();
}

std::string genic::formatStatsReport(const GenicReport &R) {
  std::ostringstream Out;
  char Buf[256];
  auto P = [&](const char *Fmt, auto... Args) {
    std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    Out << Buf;
  };
  if (R.Inversion) {
    Out << "\nper-rule inversion:\n";
    for (const RuleInversionRecord &Rec : R.Inversion->Records)
      P("  rule %-3u %-4s %7.3fs  %s\n", Rec.Rule,
        Rec.Inverted ? "ok" : "FAIL", Rec.Seconds, Rec.Error.c_str());
    Out << "SyGuS calls (size, seconds, outcome):\n";
    for (const SygusEngine::CallRecord &C : R.SygusCalls)
      P("  %3u  %7.3fs  %s  (%u CEGIS iterations)\n", C.ResultSize,
        C.Seconds, C.Success ? "ok" : "fail", C.CegisIterations);
  }
  auto PrintCaches = [&](const Solver::Stats &S) {
    P("  sat cache %llu hit / %llu miss / %llu evicted, model "
      "cache %llu/%llu/%llu, projection cache %llu/%llu/%llu\n",
      (unsigned long long)S.CacheHits, (unsigned long long)S.CacheMisses,
      (unsigned long long)S.CacheEvictions,
      (unsigned long long)S.ModelCacheHits,
      (unsigned long long)S.ModelCacheMisses,
      (unsigned long long)S.ModelCacheEvictions,
      (unsigned long long)S.ProjCacheHits,
      (unsigned long long)S.ProjCacheMisses,
      (unsigned long long)S.ProjCacheEvictions);
  };
  const Solver::Stats &S = R.SolverStats;
  P("solver (shared): %llu sat queries, %llu QE calls (%llu fallbacks)\n",
    (unsigned long long)S.SatQueries, (unsigned long long)S.QeCalls,
    (unsigned long long)S.QeFallbacks);
  PrintCaches(S);
  if (R.CheckerSessions) {
    const Solver::Stats &C = R.CheckerStats;
    P("solver (%u checker sessions): %llu sat queries\n", R.CheckerSessions,
      (unsigned long long)C.SatQueries);
    PrintCaches(C);
  }
  if (R.WorkerStats.Sessions) {
    const Solver::Stats &W = R.WorkerStats.Smt;
    P("solver (%u worker sessions): %llu sat queries\n",
      R.WorkerStats.Sessions, (unsigned long long)W.SatQueries);
    PrintCaches(W);
    P("worker forks: %llu nodes cloned in, %llu cloned out, "
      "bank reuse %llu hit / %llu miss\n",
      (unsigned long long)R.WorkerStats.CloneInNodes,
      (unsigned long long)R.WorkerStats.CloneOutNodes,
      (unsigned long long)R.WorkerStats.BankReuseHits,
      (unsigned long long)R.WorkerStats.BankReuseMisses);
    const CompiledEvalCache::Stats &E = R.WorkerStats.Eval;
    P("compiled eval (worker sessions): %llu executions, %llu "
      "programs compiled, %llu cache hits\n",
      (unsigned long long)E.Evals, (unsigned long long)E.Compiles,
      (unsigned long long)E.hits());
  }
  const CompiledEvalCache::Stats &E = R.EvalStats;
  P("compiled eval (shared engine): %llu executions, %llu "
    "programs compiled, %llu cache hits\n",
    (unsigned long long)E.Evals, (unsigned long long)E.Compiles,
    (unsigned long long)E.hits());
  P("bank reuse (shared engine): %llu hit / %llu miss\n",
    (unsigned long long)R.BankReuseHits,
    (unsigned long long)R.BankReuseMisses);
  P("robustness: %llu retries attempted, %llu queries timed out, "
    "%llu cancelled, %llu faults injected, %u rules degraded\n",
    (unsigned long long)R.RetriesAttempted,
    (unsigned long long)R.QueriesTimedOut,
    (unsigned long long)R.QueriesCancelled,
    (unsigned long long)R.InjectedFaults, R.RulesDegraded);
  {
    Solver::Stats Inc = R.SolverStats;
    Inc += R.CheckerStats;
    Inc += R.WorkerStats.Smt;
    if (Inc.ScopePushes || Inc.AssumptionBatches || Inc.IncrementalHits)
      P("incremental: %llu scope pushes / %llu pops, %llu assumption "
        "batches (%llu literals), %llu incremental hits / %llu full "
        "restarts, scoped cache %llu hit / %llu miss / %llu evicted\n",
        (unsigned long long)Inc.ScopePushes,
        (unsigned long long)Inc.ScopePops,
        (unsigned long long)Inc.AssumptionBatches,
        (unsigned long long)Inc.AssumptionLiterals,
        (unsigned long long)Inc.IncrementalHits,
        (unsigned long long)Inc.FullRestarts,
        (unsigned long long)Inc.ScopedCacheHits,
        (unsigned long long)Inc.ScopedCacheMisses,
        (unsigned long long)Inc.ScopedCacheEvictions);
  }
  if (R.Timings.DeadlineRemainingSeconds >= 0)
    P("deadline: %.3fs remaining at exit%s\n",
      R.Timings.DeadlineRemainingSeconds,
      R.DeadlineExpired ? " (EXPIRED)" : "");
  return Out.str();
}

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

const char *phaseString(GenicReport::PhaseOutcome O) {
  switch (O) {
  case GenicReport::PhaseOutcome::NotRun:
    return "not-run";
  case GenicReport::PhaseOutcome::Ok:
    return "ok";
  case GenicReport::PhaseOutcome::Timeout:
    return "timeout";
  case GenicReport::PhaseOutcome::SolverError:
    return "solver-error";
  }
  return "not-run";
}

} // namespace

std::string genic::formatMetricsJson(const GenicReport &R,
                                     const MetricsSnapshot &Snapshot) {
  std::ostringstream Out;
  char Buf[64];
  auto Num = [&](double V) {
    std::snprintf(Buf, sizeof(Buf), "%.6f", V);
    return std::string(Buf);
  };

  Out << "{\n";
  Out << "  \"schema\": \"genic-metrics-v1\",\n";

  // Structural section: a pure function of the report's jobs-invariant
  // fields (the same contract formatOutcomeReport keeps) — never timings,
  // never query counts. Byte-identical across --jobs under a fixed fault
  // schedule.
  Out << "  \"structural\": {\n";
  Out << "    \"entry\": \"" << jsonEscape(R.EntryName) << "\",\n";
  Out << "    \"states\": " << R.NumStates << ",\n";
  Out << "    \"transitions\": " << R.NumTransitions << ",\n";
  Out << "    \"auxFuncs\": " << R.NumAuxFuncs << ",\n";
  Out << "    \"maxLookahead\": " << R.MaxLookahead << ",\n";
  Out << "    \"sourceBytes\": " << R.SourceBytes << ",\n";
  Out << "    \"theory\": \"" << jsonEscape(R.Theory) << "\",\n";
  Out << "    \"phases\": {\n";
  Out << "      \"determinism\": \"" << phaseString(R.DeterminismPhase)
      << "\",\n";
  Out << "      \"injectivity\": \"" << phaseString(R.InjectivityPhase)
      << "\",\n";
  Out << "      \"inversion\": \"" << phaseString(R.InversionPhase) << "\"\n";
  Out << "    },\n";
  Out << "    \"deterministic\": " << (R.Deterministic ? "true" : "false")
      << ",\n";
  Out << "    \"determinismDetail\": \"" << jsonEscape(R.DeterminismDetail)
      << "\",\n";
  if (R.Injectivity)
    Out << "    \"injective\": "
        << (R.Injectivity->Injective ? "true" : "false") << ",\n"
        << "    \"injectivityDetail\": \""
        << jsonEscape(R.Injectivity->Detail) << "\",\n";
  else
    Out << "    \"injective\": null,\n";
  if (R.Inversion) {
    Out << "    \"inversionComplete\": "
        << (R.Inversion->complete() ? "true" : "false") << ",\n";
    Out << "    \"inverseSourceBytes\": " << R.InverseSourceBytes << ",\n";
    Out << "    \"rules\": [\n";
    for (size_t I = 0; I < R.Inversion->Records.size(); ++I) {
      const RuleInversionRecord &Rec = R.Inversion->Records[I];
      Out << "      {\"rule\": " << Rec.Rule << ", \"outcome\": \""
          << toString(Rec.Outcome) << "\", \"retries\": " << Rec.Retries
          << ", \"error\": \"" << jsonEscape(Rec.Error) << "\"}"
          << (I + 1 < R.Inversion->Records.size() ? "," : "") << "\n";
    }
    Out << "    ],\n";
  } else {
    Out << "    \"inversionComplete\": null,\n";
  }
  Out << "    \"rulesDegraded\": " << R.RulesDegraded << ",\n";
  Out << "    \"degradeDetail\": \"" << jsonEscape(R.DegradeDetail)
      << "\",\n";
  Out << "    \"deadlineExpired\": "
      << (R.DeadlineExpired ? "true" : "false") << "\n";
  Out << "  },\n";

  // Registry sections: maps are name-sorted, one key per line. Counts here
  // (solver queries, cache traffic) legitimately vary with --jobs.
  Out << "  \"counters\": {\n";
  for (auto It = Snapshot.Counters.begin(); It != Snapshot.Counters.end();
       ++It)
    Out << "    \"" << jsonEscape(It->first) << "\": " << It->second
        << (std::next(It) != Snapshot.Counters.end() ? "," : "") << "\n";
  Out << "  },\n";
  Out << "  \"gauges\": {\n";
  for (auto It = Snapshot.Gauges.begin(); It != Snapshot.Gauges.end(); ++It)
    Out << "    \"" << jsonEscape(It->first) << "\": " << It->second
        << (std::next(It) != Snapshot.Gauges.end() ? "," : "") << "\n";
  Out << "  },\n";
  Out << "  \"histograms\": {\n";
  for (auto It = Snapshot.Histograms.begin();
       It != Snapshot.Histograms.end(); ++It) {
    const MetricsSnapshot::Histogram &H = It->second;
    Out << "    \"" << jsonEscape(It->first) << "\": {\"count\": " << H.Count
        << ", \"sum_us\": " << H.SumUs << ", \"max_us\": " << H.MaxUs
        << ", \"buckets\": [";
    for (unsigned I = 0; I < MetricsHistogram::NumBuckets; ++I)
      Out << (I ? "," : "") << H.Buckets[I];
    Out << "]}" << (std::next(It) != Snapshot.Histograms.end() ? "," : "")
        << "\n";
  }
  Out << "  },\n";

  // Timing section: isolated so nothing above has to be wall-clock stable.
  Out << "  \"timings\": {\n";
  Out << "    \"determinism_seconds\": "
      << Num(R.Timings.DeterminismSeconds) << ",\n";
  Out << "    \"injectivity_seconds\": "
      << Num(R.Timings.InjectivitySeconds) << ",\n";
  Out << "    \"inversion_seconds\": " << Num(R.Timings.InversionSeconds)
      << ",\n";
  Out << "    \"total_seconds\": " << Num(R.Timings.TotalSeconds) << ",\n";
  Out << "    \"deadline_remaining_seconds\": "
      << Num(R.Timings.DeadlineRemainingSeconds) << "\n";
  Out << "  }\n";
  Out << "}\n";
  return Out.str();
}

int genic::suggestedExitCode(const GenicReport &Report) {
  using PO = GenicReport::PhaseOutcome;
  bool SolverErr = Report.DeterminismPhase == PO::SolverError ||
                   Report.InjectivityPhase == PO::SolverError ||
                   Report.InversionPhase == PO::SolverError;
  bool Budget = Report.DeadlineExpired ||
                Report.DeterminismPhase == PO::Timeout ||
                Report.InjectivityPhase == PO::Timeout ||
                Report.InversionPhase == PO::Timeout;
  bool Negative = false;
  if (Report.DeterminismPhase == PO::Ok && !Report.Deterministic)
    Negative = true;
  if (Report.Injectivity && !Report.Injectivity->Injective)
    Negative = true;
  if (Report.Inversion)
    for (const RuleInversionRecord &R : Report.Inversion->Records)
      switch (R.Outcome) {
      case RuleOutcome::Inverted:
        break;
      case RuleOutcome::NotInjective:
        Negative = true;
        break;
      case RuleOutcome::Timeout:
        Budget = true;
        break;
      case RuleOutcome::SolverError:
        SolverErr = true;
        break;
      }
  if (SolverErr)
    return ExitInternalError;
  if (Budget)
    return ExitBudgetExhausted;
  if (Negative)
    return ExitNotInvertible;
  return ExitOk;
}
