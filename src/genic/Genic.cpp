//===- genic/Genic.cpp -------------------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "genic/Genic.h"

#include "support/Prometheus.h"

#include <cstdio>
#include <iterator>
#include <sstream>

using namespace genic;

std::string genic::formatOutcomeReport(const GenicReport &Report) {
  std::ostringstream Out;
  auto Phase = [&](const char *Name, GenicReport::PhaseOutcome O,
                   const std::string &Verdict) {
    Out << "  " << Name << ": ";
    switch (O) {
    case GenicReport::PhaseOutcome::NotRun:
      Out << "not run";
      break;
    case GenicReport::PhaseOutcome::Ok:
      Out << Verdict;
      break;
    case GenicReport::PhaseOutcome::Timeout:
      Out << "timeout";
      break;
    case GenicReport::PhaseOutcome::SolverError:
      Out << "solver error";
      break;
    }
    Out << "\n";
  };

  Out << "outcome report for " << Report.EntryName << "\n";
  Phase("determinism", Report.DeterminismPhase,
        Report.Deterministic
            ? "deterministic"
            : "nondeterministic (" + Report.DeterminismDetail + ")");
  if (Report.InjectivityRequested || Report.Injectivity) {
    std::string Verdict = "-";
    if (Report.Injectivity)
      Verdict = Report.Injectivity->Injective
                    ? "injective"
                    : "not injective" +
                          (Report.Injectivity->Detail.empty()
                               ? std::string()
                               : " (" + Report.Injectivity->Detail + ")");
    Phase("injectivity", Report.InjectivityPhase, Verdict);
  }
  if (Report.InversionRequested || Report.Inversion) {
    std::string Verdict = "-";
    if (Report.Inversion) {
      size_t Total = Report.Inversion->Records.size();
      size_t Done = 0;
      for (const RuleInversionRecord &R : Report.Inversion->Records)
        Done += R.Inverted;
      Verdict = std::to_string(Done) + "/" + std::to_string(Total) +
                " rules inverted";
    }
    Phase("inversion", Report.InversionPhase, Verdict);
    if (Report.Inversion)
      for (const RuleInversionRecord &R : Report.Inversion->Records) {
        Out << "    rule " << R.Rule << ": " << toString(R.Outcome);
        if (R.Retries)
          Out << " (retries " << R.Retries << ")";
        if (!R.Error.empty())
          Out << " — " << R.Error;
        Out << "\n";
      }
  }
  if (!Report.DegradeDetail.empty())
    Out << "  degraded: " << Report.DegradeDetail << "\n";
  if (Report.DeadlineExpired)
    Out << "  global deadline exhausted\n";
  return Out.str();
}

std::string genic::formatStatsReport(const GenicReport &R) {
  std::ostringstream Out;
  char Buf[256];
  auto P = [&](const char *Fmt, auto... Args) {
    std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    Out << Buf;
  };
  if (R.Inversion) {
    Out << "\nper-rule inversion:\n";
    for (const RuleInversionRecord &Rec : R.Inversion->Records)
      P("  rule %-3u %-4s %7.3fs  %s\n", Rec.Rule,
        Rec.Inverted ? "ok" : "FAIL", Rec.Seconds, Rec.Error.c_str());
    Out << "SyGuS calls (size, seconds, outcome):\n";
    for (const SygusEngine::CallRecord &C : R.SygusCalls)
      P("  %3u  %7.3fs  %s  (%u CEGIS iterations)\n", C.ResultSize,
        C.Seconds, C.Success ? "ok" : "fail", C.CegisIterations);
  }
  auto PrintCaches = [&](const Solver::Stats &S) {
    P("  sat cache %llu hit / %llu miss / %llu evicted, model "
      "cache %llu/%llu/%llu, projection cache %llu/%llu/%llu\n",
      (unsigned long long)S.CacheHits, (unsigned long long)S.CacheMisses,
      (unsigned long long)S.CacheEvictions,
      (unsigned long long)S.ModelCacheHits,
      (unsigned long long)S.ModelCacheMisses,
      (unsigned long long)S.ModelCacheEvictions,
      (unsigned long long)S.ProjCacheHits,
      (unsigned long long)S.ProjCacheMisses,
      (unsigned long long)S.ProjCacheEvictions);
  };
  const Solver::Stats &S = R.SolverStats;
  P("solver (shared): %llu sat queries, %llu QE calls (%llu fallbacks)\n",
    (unsigned long long)S.SatQueries, (unsigned long long)S.QeCalls,
    (unsigned long long)S.QeFallbacks);
  PrintCaches(S);
  if (R.CheckerSessions) {
    const Solver::Stats &C = R.CheckerStats;
    P("solver (%u checker sessions): %llu sat queries\n", R.CheckerSessions,
      (unsigned long long)C.SatQueries);
    PrintCaches(C);
  }
  if (R.WorkerStats.Sessions) {
    const Solver::Stats &W = R.WorkerStats.Smt;
    P("solver (%u worker sessions): %llu sat queries\n",
      R.WorkerStats.Sessions, (unsigned long long)W.SatQueries);
    PrintCaches(W);
    P("worker forks: %llu nodes cloned in, %llu cloned out, "
      "bank reuse %llu hit / %llu miss\n",
      (unsigned long long)R.WorkerStats.CloneInNodes,
      (unsigned long long)R.WorkerStats.CloneOutNodes,
      (unsigned long long)R.WorkerStats.BankReuseHits,
      (unsigned long long)R.WorkerStats.BankReuseMisses);
    const CompiledEvalCache::Stats &E = R.WorkerStats.Eval;
    P("compiled eval (worker sessions): %llu executions, %llu "
      "programs compiled, %llu cache hits\n",
      (unsigned long long)E.Evals, (unsigned long long)E.Compiles,
      (unsigned long long)E.hits());
  }
  const CompiledEvalCache::Stats &E = R.EvalStats;
  P("compiled eval (shared engine): %llu executions, %llu "
    "programs compiled, %llu cache hits\n",
    (unsigned long long)E.Evals, (unsigned long long)E.Compiles,
    (unsigned long long)E.hits());
  P("bank reuse (shared engine): %llu hit / %llu miss\n",
    (unsigned long long)R.BankReuseHits,
    (unsigned long long)R.BankReuseMisses);
  P("robustness: %llu retries attempted, %llu queries timed out, "
    "%llu cancelled, %llu faults injected, %u rules degraded\n",
    (unsigned long long)R.RetriesAttempted,
    (unsigned long long)R.QueriesTimedOut,
    (unsigned long long)R.QueriesCancelled,
    (unsigned long long)R.InjectedFaults, R.RulesDegraded);
  if (R.WorkerShards || R.WorkerCrashes)
    P("worker procs: %llu shards dispatched, %llu crashes, %llu restarts, "
      "%llu shards degraded\n",
      (unsigned long long)R.WorkerShards,
      (unsigned long long)R.WorkerCrashes,
      (unsigned long long)R.WorkerRestarts,
      (unsigned long long)R.WorkerShardsDegraded);
  {
    Solver::Stats Inc = R.SolverStats;
    Inc += R.CheckerStats;
    Inc += R.WorkerStats.Smt;
    if (Inc.ScopePushes || Inc.AssumptionBatches || Inc.IncrementalHits)
      P("incremental: %llu scope pushes / %llu pops, %llu assumption "
        "batches (%llu literals), %llu incremental hits / %llu full "
        "restarts, scoped cache %llu hit / %llu miss / %llu evicted\n",
        (unsigned long long)Inc.ScopePushes,
        (unsigned long long)Inc.ScopePops,
        (unsigned long long)Inc.AssumptionBatches,
        (unsigned long long)Inc.AssumptionLiterals,
        (unsigned long long)Inc.IncrementalHits,
        (unsigned long long)Inc.FullRestarts,
        (unsigned long long)Inc.ScopedCacheHits,
        (unsigned long long)Inc.ScopedCacheMisses,
        (unsigned long long)Inc.ScopedCacheEvictions);
  }
  if (R.Timings.DeadlineRemainingSeconds >= 0)
    P("deadline: %.3fs remaining at exit%s\n",
      R.Timings.DeadlineRemainingSeconds,
      R.DeadlineExpired ? " (EXPIRED)" : "");
  return Out.str();
}

std::string genic::formatStatsReport(const GenicReport &R,
                                     const MetricsSnapshot &Snapshot) {
  std::string Out = formatStatsReport(R);
  bool Headed = false;
  char Buf[256];
  for (const auto &[Name, H] : Snapshot.Histograms) {
    if (Name.rfind("solver.query.us.", 0) != 0)
      continue;
    if (!Headed) {
      Out += "solver query latency (us):\n";
      Headed = true;
    }
    std::snprintf(Buf, sizeof(Buf),
                  "  %-44s %7llu queries  p50 %.0f  p90 %.0f  p99 %.0f  "
                  "max %llu\n",
                  Name.c_str(), (unsigned long long)H.Count,
                  histogramQuantileUs(H, 0.5), histogramQuantileUs(H, 0.9),
                  histogramQuantileUs(H, 0.99), (unsigned long long)H.MaxUs);
    Out += Buf;
  }
  return Out;
}

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

const char *phaseString(GenicReport::PhaseOutcome O) {
  switch (O) {
  case GenicReport::PhaseOutcome::NotRun:
    return "not-run";
  case GenicReport::PhaseOutcome::Ok:
    return "ok";
  case GenicReport::PhaseOutcome::Timeout:
    return "timeout";
  case GenicReport::PhaseOutcome::SolverError:
    return "solver-error";
  }
  return "not-run";
}

/// The registry sections shared by formatMetricsJson and
/// formatMetricsSnapshotJson: counters, gauges, and histograms, name-sorted,
/// one key per line. Ends after the histograms' closing "  }" with no comma
/// or newline so callers control what follows (a timings section or the end
/// of the document).
void appendRegistrySections(std::ostringstream &Out,
                            const MetricsSnapshot &Snapshot) {
  Out << "  \"counters\": {\n";
  for (auto It = Snapshot.Counters.begin(); It != Snapshot.Counters.end();
       ++It)
    Out << "    \"" << jsonEscape(It->first) << "\": " << It->second
        << (std::next(It) != Snapshot.Counters.end() ? "," : "") << "\n";
  Out << "  },\n";
  Out << "  \"gauges\": {\n";
  for (auto It = Snapshot.Gauges.begin(); It != Snapshot.Gauges.end(); ++It)
    Out << "    \"" << jsonEscape(It->first) << "\": " << It->second
        << (std::next(It) != Snapshot.Gauges.end() ? "," : "") << "\n";
  Out << "  },\n";
  Out << "  \"histograms\": {\n";
  for (auto It = Snapshot.Histograms.begin();
       It != Snapshot.Histograms.end(); ++It) {
    const MetricsSnapshot::Histogram &H = It->second;
    Out << "    \"" << jsonEscape(It->first) << "\": {\"count\": " << H.Count
        << ", \"sum_us\": " << H.SumUs << ", \"max_us\": " << H.MaxUs
        << ", \"buckets\": [";
    for (unsigned I = 0; I < MetricsHistogram::NumBuckets; ++I)
      Out << (I ? "," : "") << H.Buckets[I];
    Out << "]}" << (std::next(It) != Snapshot.Histograms.end() ? "," : "")
        << "\n";
  }
  Out << "  }";
}

} // namespace

std::string genic::formatMetricsJson(const GenicReport &R,
                                     const MetricsSnapshot &Snapshot) {
  std::ostringstream Out;
  char Buf[64];
  auto Num = [&](double V) {
    std::snprintf(Buf, sizeof(Buf), "%.6f", V);
    return std::string(Buf);
  };

  Out << "{\n";
  Out << "  \"schema\": \"genic-metrics-v1\",\n";

  // Structural section: a pure function of the report's jobs-invariant
  // fields (the same contract formatOutcomeReport keeps) — never timings,
  // never query counts. Byte-identical across --jobs under a fixed fault
  // schedule.
  Out << "  \"structural\": {\n";
  Out << "    \"entry\": \"" << jsonEscape(R.EntryName) << "\",\n";
  Out << "    \"states\": " << R.NumStates << ",\n";
  Out << "    \"transitions\": " << R.NumTransitions << ",\n";
  Out << "    \"auxFuncs\": " << R.NumAuxFuncs << ",\n";
  Out << "    \"maxLookahead\": " << R.MaxLookahead << ",\n";
  Out << "    \"sourceBytes\": " << R.SourceBytes << ",\n";
  Out << "    \"theory\": \"" << jsonEscape(R.Theory) << "\",\n";
  Out << "    \"phases\": {\n";
  Out << "      \"determinism\": \"" << phaseString(R.DeterminismPhase)
      << "\",\n";
  Out << "      \"injectivity\": \"" << phaseString(R.InjectivityPhase)
      << "\",\n";
  Out << "      \"inversion\": \"" << phaseString(R.InversionPhase) << "\"\n";
  Out << "    },\n";
  Out << "    \"deterministic\": " << (R.Deterministic ? "true" : "false")
      << ",\n";
  Out << "    \"determinismDetail\": \"" << jsonEscape(R.DeterminismDetail)
      << "\",\n";
  if (R.Injectivity)
    Out << "    \"injective\": "
        << (R.Injectivity->Injective ? "true" : "false") << ",\n"
        << "    \"injectivityDetail\": \""
        << jsonEscape(R.Injectivity->Detail) << "\",\n";
  else
    Out << "    \"injective\": null,\n";
  if (R.Inversion) {
    Out << "    \"inversionComplete\": "
        << (R.Inversion->complete() ? "true" : "false") << ",\n";
    Out << "    \"inverseSourceBytes\": " << R.InverseSourceBytes << ",\n";
    Out << "    \"rules\": [\n";
    for (size_t I = 0; I < R.Inversion->Records.size(); ++I) {
      const RuleInversionRecord &Rec = R.Inversion->Records[I];
      Out << "      {\"rule\": " << Rec.Rule << ", \"outcome\": \""
          << toString(Rec.Outcome) << "\", \"retries\": " << Rec.Retries
          << ", \"error\": \"" << jsonEscape(Rec.Error) << "\"}"
          << (I + 1 < R.Inversion->Records.size() ? "," : "") << "\n";
    }
    Out << "    ],\n";
  } else {
    Out << "    \"inversionComplete\": null,\n";
  }
  Out << "    \"rulesDegraded\": " << R.RulesDegraded << ",\n";
  Out << "    \"degradeDetail\": \"" << jsonEscape(R.DegradeDetail)
      << "\",\n";
  Out << "    \"deadlineExpired\": "
      << (R.DeadlineExpired ? "true" : "false") << "\n";
  Out << "  },\n";

  // Registry sections: maps are name-sorted, one key per line. Counts here
  // (solver queries, cache traffic) legitimately vary with --jobs.
  appendRegistrySections(Out, Snapshot);
  Out << ",\n";

  // Timing section: isolated so nothing above has to be wall-clock stable.
  Out << "  \"timings\": {\n";
  Out << "    \"determinism_seconds\": "
      << Num(R.Timings.DeterminismSeconds) << ",\n";
  Out << "    \"injectivity_seconds\": "
      << Num(R.Timings.InjectivitySeconds) << ",\n";
  Out << "    \"inversion_seconds\": " << Num(R.Timings.InversionSeconds)
      << ",\n";
  Out << "    \"total_seconds\": " << Num(R.Timings.TotalSeconds) << ",\n";
  Out << "    \"deadline_remaining_seconds\": "
      << Num(R.Timings.DeadlineRemainingSeconds) << "\n";
  Out << "  }\n";
  Out << "}\n";
  return Out.str();
}

std::string genic::formatMetricsSnapshotJson(const MetricsSnapshot &Snapshot) {
  std::ostringstream Out;
  Out << "{\n";
  Out << "  \"schema\": \"genic-metrics-v1\",\n";
  appendRegistrySections(Out, Snapshot);
  Out << "\n";
  Out << "}\n";
  return Out.str();
}

int genic::suggestedExitCode(const GenicReport &Report) {
  using PO = GenicReport::PhaseOutcome;
  bool SolverErr = Report.DeterminismPhase == PO::SolverError ||
                   Report.InjectivityPhase == PO::SolverError ||
                   Report.InversionPhase == PO::SolverError;
  bool Budget = Report.DeadlineExpired ||
                Report.DeterminismPhase == PO::Timeout ||
                Report.InjectivityPhase == PO::Timeout ||
                Report.InversionPhase == PO::Timeout;
  bool Negative = false;
  if (Report.DeterminismPhase == PO::Ok && !Report.Deterministic)
    Negative = true;
  if (Report.Injectivity && !Report.Injectivity->Injective)
    Negative = true;
  if (Report.Inversion)
    for (const RuleInversionRecord &R : Report.Inversion->Records)
      switch (R.Outcome) {
      case RuleOutcome::Inverted:
        break;
      case RuleOutcome::NotInjective:
        Negative = true;
        break;
      case RuleOutcome::Timeout:
        Budget = true;
        break;
      case RuleOutcome::SolverError:
        SolverErr = true;
        break;
      }
  if (SolverErr)
    return ExitInternalError;
  if (Budget)
    return ExitBudgetExhausted;
  if (Negative)
    return ExitNotInvertible;
  return ExitOk;
}
