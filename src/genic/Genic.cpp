//===- genic/Genic.cpp -------------------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "genic/Genic.h"

#include "genic/Parser.h"
#include "genic/ProgramPrinter.h"
#include "support/Timer.h"

#include <cassert>
#include <exception>
#include <sstream>

using namespace genic;

GenicTool::GenicTool(InverterOptions Options) : Options(Options) {}

GenicTool::~GenicTool() = default;

Result<GenicReport> GenicTool::run(const std::string &Source,
                                   bool ForceInjectivity, bool ForceInvert) {
  TermFactory &Factory = Ctx.factory();
  Solver &Slv = Ctx.solver();

  // Install the run-wide control: a fresh deadline token (the budget is
  // per run, not per tool) plus the fault plan. Every session the run
  // creates — pooled checkers, per-rule forks — copies this control.
  SolverControl Ctl;
  if (BudgetSeconds > 0)
    Ctl.Cancel = CancellationToken(Deadline::after(BudgetSeconds));
  Ctl.Faults = Faults;
  Slv.setControl(Ctl);

  Result<AstProgram> Ast = parseGenic(Source);
  if (!Ast)
    return Ast.status();
  Result<LoweredProgram> Lowered = lowerProgram(Factory, *Ast);
  if (!Lowered)
    return Lowered.status();
  LoweredProgram &P = *Lowered;

  GenicReport Report;
  Report.EntryName = P.EntryName;
  Report.NumStates = P.Machine.numStates();
  Report.NumTransitions = P.Machine.transitions().size();
  Report.NumAuxFuncs = P.AuxFuncs.size();
  Report.MaxLookahead = P.Machine.lookahead();
  Report.SourceBytes = Source.size();
  Report.Theory = P.Machine.inputType().str();
  Report.Machine = P.Machine;

  Report.InjectivityRequested = P.WantsInjective || ForceInjectivity;
  Report.InversionRequested = P.WantsInvert || ForceInvert;

  // One pool of warm worker sessions serves the determinism check and
  // every phase of the injectivity check. Sessions fork the shared factory
  // copy-on-write, so the program's terms are readable in every session
  // without cloning (exports stay data-only, see SolverSessionPool.h);
  // they also inherit this run's deadline and fault plan.
  SolverSessionPool Sessions(Factory, Slv);

  // Classifies a phase failure: budget and solver-error statuses degrade
  // the run (the partial report is still emitted, later phases are
  // skipped); anything else propagates as a plain error like before.
  bool DegradedRun = false;
  auto Degrade = [&Report, &DegradedRun](const Status &St,
                                         GenicReport::PhaseOutcome &Slot,
                                         const char *Phase) -> bool {
    switch (St.code()) {
    case StatusCode::Timeout:
    case StatusCode::Cancelled:
      Slot = GenicReport::PhaseOutcome::Timeout;
      break;
    case StatusCode::SolverError:
      Slot = GenicReport::PhaseOutcome::SolverError;
      break;
    default:
      return false;
    }
    if (!DegradedRun)
      Report.DegradeDetail = std::string(Phase) + ": " + St.message();
    DegradedRun = true;
    return true;
  };

  // GENIC requires programs to be deterministic (§3.3): the determinism
  // check always runs. The try/catch converts worker exceptions re-raised
  // by ThreadPool::wait (e.g. an injected z3 fault in a parallel scan)
  // into a classified status instead of tearing the process down.
  {
    Timer T;
    Result<std::optional<DeterminismViolation>> Det =
        [&]() -> Result<std::optional<DeterminismViolation>> {
      try {
        DeterminismOptions DetOpts;
        DetOpts.Jobs = Options.Jobs;
        DetOpts.Sessions = &Sessions;
        return checkDeterminism(P.Machine, Slv, DetOpts);
      } catch (const std::exception &Ex) {
        return Status::solverError(std::string("worker exception: ") +
                                   Ex.what());
      }
    }();
    Report.DeterminismSeconds = T.seconds();
    if (!Det) {
      if (!Degrade(Det.status(), Report.DeterminismPhase,
                   "determinism check"))
        return Det.status();
    } else {
      Report.DeterminismPhase = GenicReport::PhaseOutcome::Ok;
      Report.Deterministic = !Det->has_value();
      if (Det->has_value())
        Report.DeterminismDetail =
            "rules " + std::to_string((*Det)->TransitionA) + " and " +
            std::to_string((*Det)->TransitionB) + " overlap on " +
            toString((*Det)->Symbols) + ": " + (*Det)->Reason;
    }
  }

  if (Report.InjectivityRequested && !DegradedRun) {
    Timer T;
    Result<InjectivityResult> Inj = [&]() -> Result<InjectivityResult> {
      try {
        InjectivityOptions InjOpts;
        InjOpts.Jobs = Options.Jobs;
        InjOpts.Sessions = &Sessions;
        return checkInjectivity(P.Machine, Slv, InjOpts);
      } catch (const std::exception &Ex) {
        return Status::solverError(std::string("worker exception: ") +
                                   Ex.what());
      }
    }();
    Report.InjectivitySeconds = T.seconds();
    if (!Inj) {
      if (!Degrade(Inj.status(), Report.InjectivityPhase,
                   "injectivity check"))
        return Inj.status();
    } else {
      Report.InjectivityPhase = GenicReport::PhaseOutcome::Ok;
      Report.Injectivity = *Inj;
    }
  }

  if (Report.InversionRequested && !DegradedRun) {
    Timer T;
    Inverter Inv(Slv, Options);
    Result<InversionOutcome> Out = [&]() -> Result<InversionOutcome> {
      try {
        return Inv.invert(P.Machine, P.AuxFuncs);
      } catch (const std::exception &Ex) {
        return Status::solverError(std::string("worker exception: ") +
                                   Ex.what());
      }
    }();
    Report.InversionSeconds = T.seconds();
    if (!Out) {
      if (!Degrade(Out.status(), Report.InversionPhase, "inversion"))
        return Out.status();
    } else {
      Report.InversionPhase = GenicReport::PhaseOutcome::Ok;
      Report.Inversion = *Out;
      Report.InverseMachine = Out->Inverse;
      Report.SygusCalls = Inv.engine().calls();
      Report.WorkerStats = Inv.workerStats();
      Report.EvalStats = Inv.engine().evalCache().stats();
      Report.BankReuseHits = Inv.engine().bankStore().stats().ReuseHits;
      Report.BankReuseMisses = Inv.engine().bankStore().stats().ReuseMisses;

      // Emit the inverse as GENIC source (Figure 3). The synthesized
      // inverse auxiliary functions print first, making the program read
      // naturally.
      PrintOptions PO;
      for (const std::string &Name : P.StateNames)
        PO.StateNames.push_back(Name + "_inv");
      std::vector<const FuncDef *> Aux = Inv.synthesizedAux();
      Report.InverseSource = printGenicProgram(Out->Inverse, Aux, PO);
      Report.InverseSourceBytes = Report.InverseSource.size();
    }
  }

  // Every error path above returns through here with all leases back in
  // the pool: workers hold leases only inside their task bodies, and
  // ThreadPool re-raises after the pool drains.
  assert(Sessions.outstandingLeases() == 0 &&
         "worker session leases must be RAII-returned on every path");

  Report.SolverStats = Slv.stats();
  Report.CheckerSessions = Sessions.sessions();
  Report.CheckerStats = Sessions.solverStats();

  // Robustness accounting across all sessions of the run.
  Solver::Stats Total = Report.SolverStats;
  Total += Report.CheckerStats;
  Total += Report.WorkerStats.Smt;
  Report.RetriesAttempted = Total.Retries;
  Report.QueriesTimedOut = Total.QueryTimeouts;
  Report.QueriesCancelled = Total.QueriesCancelled;
  Report.InjectedFaults = Total.InjectedFaults;
  if (Report.Inversion)
    Report.RulesDegraded = Report.Inversion->degradedRules();
  Report.DeadlineExpired = Ctl.Cancel.active() && Ctl.Cancel.cancelled();
  Report.DeadlineRemainingSeconds =
      Ctl.Cancel.active() ? Ctl.Cancel.remainingSeconds() : -1;
  return Report;
}

std::string genic::formatOutcomeReport(const GenicReport &Report) {
  std::ostringstream Out;
  auto Phase = [&](const char *Name, GenicReport::PhaseOutcome O,
                   const std::string &Verdict) {
    Out << "  " << Name << ": ";
    switch (O) {
    case GenicReport::PhaseOutcome::NotRun:
      Out << "not run";
      break;
    case GenicReport::PhaseOutcome::Ok:
      Out << Verdict;
      break;
    case GenicReport::PhaseOutcome::Timeout:
      Out << "timeout";
      break;
    case GenicReport::PhaseOutcome::SolverError:
      Out << "solver error";
      break;
    }
    Out << "\n";
  };

  Out << "outcome report for " << Report.EntryName << "\n";
  Phase("determinism", Report.DeterminismPhase,
        Report.Deterministic
            ? "deterministic"
            : "nondeterministic (" + Report.DeterminismDetail + ")");
  if (Report.InjectivityRequested || Report.Injectivity) {
    std::string Verdict = "-";
    if (Report.Injectivity)
      Verdict = Report.Injectivity->Injective
                    ? "injective"
                    : "not injective" +
                          (Report.Injectivity->Detail.empty()
                               ? std::string()
                               : " (" + Report.Injectivity->Detail + ")");
    Phase("injectivity", Report.InjectivityPhase, Verdict);
  }
  if (Report.InversionRequested || Report.Inversion) {
    std::string Verdict = "-";
    if (Report.Inversion) {
      size_t Total = Report.Inversion->Records.size();
      size_t Done = 0;
      for (const RuleInversionRecord &R : Report.Inversion->Records)
        Done += R.Inverted;
      Verdict = std::to_string(Done) + "/" + std::to_string(Total) +
                " rules inverted";
    }
    Phase("inversion", Report.InversionPhase, Verdict);
    if (Report.Inversion)
      for (const RuleInversionRecord &R : Report.Inversion->Records) {
        Out << "    rule " << R.Rule << ": " << toString(R.Outcome);
        if (R.Retries)
          Out << " (retries " << R.Retries << ")";
        if (!R.Error.empty())
          Out << " — " << R.Error;
        Out << "\n";
      }
  }
  if (!Report.DegradeDetail.empty())
    Out << "  degraded: " << Report.DegradeDetail << "\n";
  if (Report.DeadlineExpired)
    Out << "  global deadline exhausted\n";
  return Out.str();
}

int genic::suggestedExitCode(const GenicReport &Report) {
  using PO = GenicReport::PhaseOutcome;
  bool SolverErr = Report.DeterminismPhase == PO::SolverError ||
                   Report.InjectivityPhase == PO::SolverError ||
                   Report.InversionPhase == PO::SolverError;
  bool Budget = Report.DeadlineExpired ||
                Report.DeterminismPhase == PO::Timeout ||
                Report.InjectivityPhase == PO::Timeout ||
                Report.InversionPhase == PO::Timeout;
  bool Negative = false;
  if (Report.DeterminismPhase == PO::Ok && !Report.Deterministic)
    Negative = true;
  if (Report.Injectivity && !Report.Injectivity->Injective)
    Negative = true;
  if (Report.Inversion)
    for (const RuleInversionRecord &R : Report.Inversion->Records)
      switch (R.Outcome) {
      case RuleOutcome::Inverted:
        break;
      case RuleOutcome::NotInjective:
        Negative = true;
        break;
      case RuleOutcome::Timeout:
        Budget = true;
        break;
      case RuleOutcome::SolverError:
        SolverErr = true;
        break;
      }
  if (SolverErr)
    return ExitInternalError;
  if (Budget)
    return ExitBudgetExhausted;
  if (Negative)
    return ExitNotInvertible;
  return ExitOk;
}
