//===- runtime/CompiledSeft.h - Bytecode lowering of an s-EFT -------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lowering pass under the streaming decode runtime: an s-EFT (usually a
/// synthesized inverse, transducer/Invert.h) is compiled ONCE per machine
/// into per-rule CompiledEval bytecode programs — the guard, every output
/// function, and transitively every auxiliary function they call — and the
/// rules are bucketed into per-state dispatch tables. After compile() the
/// hot loop never walks a term tree again: running a rule is "execute the
/// guard program on the window span, then the output programs", a few flat
/// instruction sweeps with no allocation.
///
/// This is the interpretive-overhead gap the streaming runtime closes
/// (ROADMAP item 2): Seft::transduce() re-walks guard and output terms
/// recursively for every window and allocates a fresh window vector per rule
/// attempt, which is fine for verification round-trips but 1-2 orders of
/// magnitude too slow to serve as a codec. bench_decode measures the gap as
/// an MB/s axis.
///
/// Dispatch correctness rests on Definition 3.7 determinism, which the
/// pipeline enforces on source programs and which §7.1 observes for every
/// synthesized inverse (e2e_test re-verifies it for the corpus):
///
///  (a) two continuing rules of one state whose guards can both hold are the
///      same rule in disguise (same lookahead, target, equivalent outputs),
///      so firing the FIRST continuing rule whose guard holds is canonical —
///      even before longer-lookahead siblings have enough buffered symbols
///      to be evaluable, their guards are disjoint from the fired one;
///  (b) two finalizers only compete at equal lookahead, where their outputs
///      agree;
///  (c) a continuing rule with lookahead <= a finalizer's lookahead is
///      guard-disjoint from it, so mid-stream (where at least one more
///      symbol than any viable finalizer's lookahead remains) a firing
///      continuing rule can never belong to a run that instead finalizes.
///
/// Together these make single-pass greedy dispatch byte-identical to the
/// backtracking term evaluator; runtime/StreamDecoder.h carries the
/// streaming state. The relation is re-checked wholesale by the
/// differential fuzz in tests/stream_decode_test.cpp.
///
/// Lifetime: the compiled programs reference constants by value but
/// auxiliary FuncDefs by pointer, so the TermFactory owning the machine's
/// terms must outlive the CompiledSeft. Like the underlying cache, a
/// CompiledSeft is single-threaded: execution reuses one value stack.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_RUNTIME_COMPILEDSEFT_H
#define GENIC_RUNTIME_COMPILEDSEFT_H

#include "runtime/FusedRule.h"
#include "support/Result.h"
#include "term/CompiledEval.h"
#include "transducer/Seft.h"

#include <deque>
#include <memory>
#include <vector>

namespace genic {

/// One lowered rule: bytecode programs plus the structural fields dispatch
/// needs. Program pointers are owned by the machine's CompiledEvalCache.
struct CompiledSeftRule {
  /// The fast tier: guard + inlined aux calls + outputs as one unboxed
  /// program (runtime/FusedRule.h). Null when the rule fell back to the
  /// generic per-term programs below; both tiers are semantically
  /// identical, so dispatch just prefers this one.
  const FusedRuleProgram *Fused = nullptr;
  const CompiledProgram *Guard = nullptr;
  std::vector<const CompiledProgram *> Outputs;
  unsigned Lookahead = 0;
  /// Target state; Seft::FinalState for finalizers.
  unsigned To = 0;
  /// Index of the rule in the source machine's transition list (error
  /// messages and traces refer to rules by this).
  unsigned Index = 0;
};

/// The dispatch table of one state.
struct CompiledSeftState {
  /// Non-finalizer rules in transition order (the order the term evaluator
  /// tries them in).
  std::vector<CompiledSeftRule> Continuing;
  /// Finalizer rules in transition order.
  std::vector<CompiledSeftRule> Finalizers;
  /// Max lookahead over Continuing; 0 when the state has none.
  unsigned MaxContinuingLookahead = 0;
  /// Max lookahead over Finalizers; 0 when the state has none.
  unsigned MaxFinalizerLookahead = 0;
  bool HasFinalizer = false;
  /// Mid-stream stall bound: once this many symbols are buffered and no
  /// continuing rule fires, no rule of this state can ever fire — every
  /// continuing guard was evaluable and false, and more input than any
  /// finalizer's lookahead remains — so the input is rejected. Equals
  /// max(MaxContinuingLookahead, MaxFinalizerLookahead + 1); 0 for a dead
  /// state (reject immediately).
  unsigned StallBound = 0;
};

/// A machine lowered to bytecode dispatch tables; see file comment. Build
/// with compile(), execute through runtime/StreamDecoder.h.
class CompiledSeft {
public:
  /// Lowers \p Machine. Compiles every guard and output term (and their
  /// auxiliary callees) eagerly so the first decoded symbol already runs on
  /// bytecode; hash-consing dedupes programs across rules via the eval
  /// cache. The machine's term factory must outlive the result.
  static Result<CompiledSeft> compile(const Seft &Machine);

  unsigned numStates() const { return States.size(); }
  unsigned initial() const { return Initial; }
  const Type &inputType() const { return InputType; }
  const Type &outputType() const { return OutputType; }
  /// Maximum lookahead over all rules — the streaming decoder's carried
  /// window never exceeds max(Lookahead + 1, 1) symbols.
  unsigned lookahead() const { return MaxLookahead; }
  const CompiledSeftState &state(unsigned Q) const { return States[Q]; }

  /// The machine's program cache: execution entry points and compile-cache
  /// counters (Stats.Lookups/Compiles/hits feed the decode path of --stats
  /// and the decode.eval.* metrics keys).
  CompiledEvalCache &cache() const { return *Cache; }

  /// Scratch words a fused rule execution needs; the decoder sizes its
  /// stack to this once. 0 when no rule fused.
  unsigned maxFusedStack() const { return MaxFusedStack; }
  /// How many of numRules() compiled to the fused (unboxed, call-inlined)
  /// tier; the rest run on the generic per-term programs.
  unsigned fusedRules() const { return NumFusedRules; }
  unsigned numRules() const { return NumRules; }

private:
  CompiledSeft() = default;

  // unique_ptr keeps CompiledSeft movable (the cache itself is pinned:
  // CompiledProgram addresses must survive moves). The deque pins fused
  // programs the same way.
  std::unique_ptr<CompiledEvalCache> Cache;
  std::deque<FusedRuleProgram> FusedStore;
  std::vector<CompiledSeftState> States;
  unsigned Initial = 0;
  unsigned MaxLookahead = 0;
  unsigned MaxFusedStack = 0;
  unsigned NumFusedRules = 0;
  unsigned NumRules = 0;
  Type InputType;
  Type OutputType;
};

} // namespace genic

#endif // GENIC_RUNTIME_COMPILEDSEFT_H
