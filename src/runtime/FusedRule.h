//===- runtime/FusedRule.h - One rule as one unboxed program ---------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast tier of the s-EFT lowering (runtime/CompiledSeft.h): a whole
/// rule — guard, auxiliary-function calls, and every output — fused into a
/// single flat program over raw 64-bit words. Where the generic tier
/// (term/CompiledEval.h) executes one bytecode program per term and boxes
/// every intermediate in a typed Value, the fused tier:
///
///  - resolves all types at COMPILE time (terms are statically typed), so
///    execution touches bare uint64_t: bools as 0/1, integers as their
///    two's-complement pattern, bit-vectors masked to width;
///  - INLINES auxiliary function calls — the GENIC lowering only produces
///    non-recursive aux functions, so a call becomes "args into stack
///    slots, domain predicate, body", with no frame allocation;
///  - folds the whole rule into one program: the guard feeds a conditional
///    abort, outputs append straight to the result list, and "rule does
///    not fire" (guard false, domain violated) is a single Fail opcode —
///    legal because every context maps undefined to exactly that outcome
///    (an undefined guard rejects like a false one, an undefined output
///    means the non-symbolic rule does not exist; see Seft::transduce);
///  - fuses constant right-hand operands into the instruction, which
///    collapses the compare-against-literal ladders that dominate
///    synthesized inverse guards to one instruction per compare;
///  - compiles guards, domains, and ite conditions in CONDITION context
///    (jump threading): nested and/or trees become straight-line chains of
///    compare-and-branch instructions with no boolean materialization, and
///    a comparison feeding a branch fuses with it into one instruction.
///
/// fuseRule() is total-or-nothing: any construct it cannot prove out
/// statically (a variable outside the rule window, a type mismatch, a
/// recursive aux cycle, an oversized program) yields nullopt and the rule
/// runs on the generic tier instead, so fusion is purely an optimization
/// and never changes semantics. The differential fuzz in
/// tests/stream_decode_test.cpp holds both tiers to the term evaluator.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_RUNTIME_FUSEDRULE_H
#define GENIC_RUNTIME_FUSEDRULE_H

#include "term/Term.h"
#include "term/Value.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace genic {

/// One instruction of a fused rule program. 16 bytes; constants live
/// inline in Imm rather than behind a pool indirection.
struct FusedInstr {
  enum class K : uint8_t {
    PushConst,   // push Imm
    PushVar,     // push Window[A] (raw)
    PushSlot,    // push Stack[A] (inlined call argument)
    BoolNot,     // a ^ 1
    CmpEq,       // a == b (same static type, canonical patterns)
    CmpULe, CmpULt, CmpUGe, CmpUGt,   // unsigned at any width
    CmpSLe, CmpSLt, CmpSGe, CmpSGt,   // sign-extended at width W
    Implies,     // !a | b
    AddMask, SubMask, MulMask,        // wrap, then mask to width W
    AndBits, OrBits, XorBits,         // operands masked => result masked
    Shl, Lshr, Ashr,                  // SMT-LIB: shift >= W saturates
    NegMask,     // (~a + 1) masked (unary)
    NotMask,     // ~a masked (unary)
    Jump,            // pc := A
    JumpIfFalsePop,  // pop; if zero pc := A
    JumpIfTruePop,   // pop; if nonzero pc := A
    Ret,             // pop result, drop A argument slots, push result
    EmitBool, EmitInt, EmitBv,        // pop and append to the output list
    End,             // the rule fired; outputs are complete
    Fail,            // the rule does not fire
  };
  K Kind;
  /// RhsImm: the right-hand operand of a binary op is Imm, not the stack.
  /// BrFalse/BrTrue (comparisons only): instead of pushing the result,
  /// branch to A when it is false/true — a compare that fed a conditional
  /// jump, fused.
  uint8_t Flags = 0;
  /// Bit width for masked/shift/signed ops and EmitBv (64 for integers).
  uint16_t W = 0;
  /// Jump/branch target, window index, stack slot, or Ret argument count.
  uint32_t A = 0;
  /// Inline constant (PushConst or a fused right-hand operand).
  uint64_t Imm = 0;

  static constexpr uint8_t RhsImm = 1;
  static constexpr uint8_t BrFalse = 2;
  static constexpr uint8_t BrTrue = 4;
};

/// A fused rule: run it on a window of Lookahead input symbols; it either
/// appends the rule's outputs and reports "fired" or leaves the output
/// list unchanged.
struct FusedRuleProgram {
  std::vector<FusedInstr> Code;
  /// Exact operand-stack high-water mark, statically known.
  unsigned StackDepth = 0;
  unsigned NumOutputs = 0;
};

/// Fuses one rule. \p Guard and \p Outputs are the rule's terms over
/// Var(0..Lookahead-1) of \p InputType. Returns nullopt when the rule uses
/// something the fused tier does not model (see file comment); the caller
/// falls back to the generic tier.
std::optional<FusedRuleProgram> fuseRule(TermRef Guard,
                                         const std::vector<TermRef> &Outputs,
                                         unsigned Lookahead,
                                         const Type &InputType);

/// Executes \p P on \p Window (>= the rule's lookahead symbols, all of the
/// machine's input type — the decoder's feed path guarantees both).
/// \p Stack must hold at least P.StackDepth words. Appends the outputs to
/// \p Out and returns true iff the rule fired; on false, \p Out is
/// untouched.
bool runFusedRule(const FusedRuleProgram &P, const Value *Window,
                  ValueList &Out, uint64_t *Stack);

} // namespace genic

#endif // GENIC_RUNTIME_FUSEDRULE_H
