//===- runtime/CompiledSeft.cpp --------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "runtime/CompiledSeft.h"

#include <algorithm>

using namespace genic;

Result<CompiledSeft> CompiledSeft::compile(const Seft &Machine) {
  CompiledSeft CS;
  CS.Cache = std::make_unique<CompiledEvalCache>();
  CS.States.resize(Machine.numStates());
  CS.Initial = Machine.initial();
  CS.InputType = Machine.inputType();
  CS.OutputType = Machine.outputType();

  if (Machine.initial() >= Machine.numStates())
    return Status::error("compiled s-EFT: initial state out of range");

  const std::vector<SeftTransition> &Ts = Machine.transitions();
  for (unsigned I = 0, E = Ts.size(); I != E; ++I) {
    const SeftTransition &T = Ts[I];
    if (T.From >= Machine.numStates())
      return Status::error("compiled s-EFT: rule from unknown state");
    if (T.To != Seft::FinalState && T.To >= Machine.numStates())
      return Status::error("compiled s-EFT: rule to unknown state");
    if (T.To != Seft::FinalState && T.Lookahead == 0)
      return Status::error("compiled s-EFT: continuing rule with lookahead 0");
    if (!T.Guard)
      return Status::error("compiled s-EFT: rule without a guard");

    CompiledSeftRule R;
    R.Guard = &CS.Cache->compile(T.Guard);
    R.Outputs.reserve(T.Outputs.size());
    for (TermRef F : T.Outputs)
      R.Outputs.push_back(&CS.Cache->compile(F));
    R.Lookahead = T.Lookahead;
    R.To = T.To;
    R.Index = I;

    // Fast tier: the whole rule as one unboxed program. Falls back to the
    // generic programs above when the rule is outside the fused fragment.
    if (std::optional<FusedRuleProgram> Fused =
            fuseRule(T.Guard, T.Outputs, T.Lookahead, CS.InputType)) {
      CS.MaxFusedStack = std::max(CS.MaxFusedStack, Fused->StackDepth);
      ++CS.NumFusedRules;
      CS.FusedStore.push_back(std::move(*Fused));
      R.Fused = &CS.FusedStore.back();
    }
    ++CS.NumRules;

    CompiledSeftState &Q = CS.States[T.From];
    CS.MaxLookahead = std::max(CS.MaxLookahead, T.Lookahead);
    if (T.To == Seft::FinalState) {
      Q.MaxFinalizerLookahead = std::max(Q.MaxFinalizerLookahead, T.Lookahead);
      Q.HasFinalizer = true;
      Q.Finalizers.push_back(std::move(R));
    } else {
      Q.MaxContinuingLookahead =
          std::max(Q.MaxContinuingLookahead, T.Lookahead);
      Q.Continuing.push_back(std::move(R));
    }
  }

  for (CompiledSeftState &Q : CS.States) {
    unsigned Bound = Q.MaxContinuingLookahead;
    if (Q.HasFinalizer)
      Bound = std::max(Bound, Q.MaxFinalizerLookahead + 1);
    Q.StallBound = Bound;
  }

  return CS;
}
