//===- runtime/FusedRule.cpp -----------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "runtime/FusedRule.h"

#include <algorithm>
#include <cassert>

using namespace genic;

namespace {

using K = FusedInstr::K;

/// Fusion gives up rather than emit a program this large; the generic tier
/// handles pathological rules.
constexpr size_t MaxCode = 1u << 16;
constexpr unsigned MaxStack = 1024;

int64_t signExtend(uint64_t X, unsigned W) {
  if (W >= 64)
    return static_cast<int64_t>(X);
  uint64_t Sign = uint64_t{1} << (W - 1);
  return static_cast<int64_t>((X ^ Sign) - Sign);
}

/// Comparison kinds are contiguous; a compare feeding a conditional jump
/// fuses with it (FusedInstr::BrFalse/BrTrue).
bool isCmp(K Kind) { return Kind >= K::CmpEq && Kind <= K::CmpSGt; }

/// Single-pass compiler. Tracks the virtual stack depth so inlined call
/// arguments get absolute slot addresses (every jump in the emitted code
/// joins points of equal depth, so depths are static). Boolean terms in
/// condition position — guards, aux-function domains, ite conditions —
/// compile by jump threading (cond()): and/or trees become chains of
/// compare-and-branch with no materialized booleans. Any construct outside
/// the modeled fragment clears Ok and the caller falls back to the generic
/// tier.
class Fuser {
public:
  Fuser(unsigned Lookahead, const Type &InputType)
      : Lookahead(Lookahead), InputType(InputType) {
    Frames.push_back(Frame{nullptr, 0, {}});
  }

  std::optional<FusedRuleProgram> fuse(TermRef Guard,
                                       const std::vector<TermRef> &Outputs) {
    if (!Guard->type().isBool())
      return std::nullopt;
    PatchList GuardTrue, GuardFalse;
    cond(Guard, GuardTrue, GuardFalse, /*FallThroughTrue=*/true);
    patch(GuardTrue);
    failOn(GuardFalse);
    for (TermRef O : Outputs) {
      compile(O);
      const Type &Ty = O->type();
      if (Ty.isBool())
        emit({K::EmitBool});
      else if (Ty.isInt())
        emit({K::EmitInt});
      else
        emit({K::EmitBv, 0, static_cast<uint16_t>(Ty.width())});
      pop();
    }
    emit({K::End});
    uint32_t FailAt = emit({K::Fail});
    for (uint32_t Fix : FailFixes)
      P.Code[Fix].A = FailAt;
    if (!Ok)
      return std::nullopt;
    assert(Depth == 0 && "fused rule must consume its whole stack");
    P.NumOutputs = Outputs.size();
    return std::move(P);
  }

private:
  struct Frame {
    const FuncDef *F; // null: the rule window (PushVar)
    unsigned Base;    // first argument slot of an inlined call
    std::vector<Type> ArgTypes;
  };
  using PatchList = std::vector<uint32_t>;

  void push() {
    ++Depth;
    P.StackDepth = std::max(P.StackDepth, Depth);
    if (Depth > MaxStack)
      Ok = false;
  }
  void pop(unsigned N = 1) { Depth -= N; }

  uint32_t emit(FusedInstr I) {
    P.Code.push_back(I);
    if (P.Code.size() > MaxCode)
      Ok = false;
    return static_cast<uint32_t>(P.Code.size() - 1);
  }
  uint32_t here() const { return static_cast<uint32_t>(P.Code.size()); }

  /// Points every branch in \p L at the next instruction. That position
  /// becomes a jump join, so raise the fusion barrier: an instruction
  /// ending exactly there must not absorb a later branch (branchLeaf).
  void patch(PatchList &L) {
    if (!L.empty())
      Barrier = here();
    for (uint32_t Fix : L)
      P.Code[Fix].A = here();
    L.clear();
  }
  /// Resolves one deferred jump to the next instruction; a join point like
  /// patch(), so it raises the fusion barrier too.
  void patchOne(uint32_t Fix) {
    Barrier = here();
    P.Code[Fix].A = here();
  }
  /// Defers branches in \p L to the shared trailing Fail.
  void failOn(PatchList &L) {
    FailFixes.insert(FailFixes.end(), L.begin(), L.end());
    L.clear();
  }

  /// The boolean on top of the stack becomes a conditional jump appended to
  /// \p L; a just-emitted comparison absorbs the jump instead — unless a
  /// jump joins right after it (the comparison is below the fusion
  /// barrier, e.g. it is the tail of a boolean ite's else-arm): the
  /// joining path would skip the fused branch with its own boolean
  /// stranded on the stack, so such a comparison gets an explicit
  /// JumpIf*Pop that both paths execute.
  void branchLeaf(bool JumpOnTrue, PatchList &L) {
    if (!Ok || P.Code.empty()) {
      Ok = false;
      return;
    }
    FusedInstr &Last = P.Code.back();
    if (here() > Barrier && isCmp(Last.Kind) &&
        !(Last.Flags & (FusedInstr::BrFalse | FusedInstr::BrTrue))) {
      Last.Flags |= JumpOnTrue ? FusedInstr::BrTrue : FusedInstr::BrFalse;
      L.push_back(static_cast<uint32_t>(P.Code.size() - 1));
    } else {
      L.push_back(emit({JumpOnTrue ? K::JumpIfTruePop : K::JumpIfFalsePop}));
    }
    pop();
  }

  /// Compiles boolean term \p T in condition position. One outcome falls
  /// through the emitted code (true when \p FallThroughTrue); every branch
  /// taken on the other outcome — and on early-decided operands of nested
  /// and/or — is appended to \p TrueFix / \p FalseFix for the caller to
  /// point somewhere. Net stack effect zero on every path.
  void cond(TermRef T, PatchList &TrueFix, PatchList &FalseFix,
            bool FallThroughTrue) {
    if (!Ok)
      return;
    switch (T->op()) {
    case Op::And:
    case Op::Or: {
      bool IsAnd = T->op() == Op::And;
      size_t N = T->arity();
      if (N == 0) {
        Ok = false; // Empty connective: the factory never builds one.
        return;
      }
      for (size_t I = 0; I + 1 < N; ++I) {
        // Left-to-right with short-circuit, matching eval(): a deciding
        // operand hides the undefinedness of the operands after it.
        PatchList Local;
        if (IsAnd)
          cond(T->child(I), Local, FalseFix, /*FallThroughTrue=*/true);
        else
          cond(T->child(I), TrueFix, Local, /*FallThroughTrue=*/false);
        patch(Local); // Undecided: fall into the next operand's test.
      }
      cond(T->child(N - 1), TrueFix, FalseFix, FallThroughTrue);
      return;
    }
    case Op::Not:
      cond(T->child(0), FalseFix, TrueFix, !FallThroughTrue);
      return;
    case Op::Const: {
      bool V = T->constValue().rawBits() != 0;
      if (V != FallThroughTrue)
        (V ? TrueFix : FalseFix).push_back(emit({K::Jump}));
      return;
    }
    default:
      // Comparisons, calls, ites, variables: evaluate, then branch on the
      // result (comparisons fuse with the branch).
      compile(T);
      if (!Ok)
        return;
      if (FallThroughTrue)
        branchLeaf(/*JumpOnTrue=*/false, FalseFix);
      else
        branchLeaf(/*JumpOnTrue=*/true, TrueFix);
      return;
    }
  }

  /// Compiles a binary operator; a constant right-hand side is folded into
  /// the instruction. Net stack effect +1.
  void binary(K Kind, uint16_t W, TermRef A, TermRef B) {
    compile(A);
    if (B->op() == Op::Const) {
      emit({Kind, FusedInstr::RhsImm, W, 0, B->constValue().rawBits()});
      return;
    }
    compile(B);
    emit({Kind, 0, W});
    pop();
  }

  /// Requires both operands to have the same type; mismatches (which the
  /// boxed evaluator maps to undefined at runtime) are left to the generic
  /// tier.
  bool sameType(TermRef T) {
    return T->arity() == 2 && T->child(0)->type() == T->child(1)->type();
  }

  /// Compiles \p T in value position: net stack effect +1.
  void compile(TermRef T) {
    if (!Ok)
      return;
    switch (T->op()) {
    case Op::Const:
      emit({K::PushConst, 0, 0, 0, T->constValue().rawBits()});
      push();
      return;

    case Op::Var: {
      const Frame &F = Frames.back();
      unsigned Index = T->varIndex();
      if (!F.F) {
        // A variable of the rule window. Out-of-range or mistyped
        // variables evaluate to undefined only when reached, which the
        // generic tier models; don't fuse.
        if (Index >= Lookahead || T->type() != InputType) {
          Ok = false;
          return;
        }
        emit({K::PushVar, 0, 0, Index});
      } else {
        if (Index >= F.ArgTypes.size() || T->type() != F.ArgTypes[Index]) {
          Ok = false;
          return;
        }
        emit({K::PushSlot, 0, 0, F.Base + Index});
      }
      push();
      return;
    }

    case Op::Ite: {
      PatchList CondTrue, CondFalse;
      cond(T->child(0), CondTrue, CondFalse, /*FallThroughTrue=*/true);
      patch(CondTrue);
      unsigned D0 = Depth;
      compile(T->child(1));
      uint32_t ToEnd = emit({K::Jump});
      patch(CondFalse);
      Depth = D0; // The else path enters without the then value.
      compile(T->child(2));
      patchOne(ToEnd);
      return;
    }

    case Op::And:
    case Op::Or: {
      // Materialize a boolean from the threaded-condition form.
      PatchList TrueFix, FalseFix;
      cond(T, TrueFix, FalseFix, /*FallThroughTrue=*/true);
      patch(TrueFix);
      emit({K::PushConst, 0, 0, 0, 1});
      push();
      uint32_t ToEnd = emit({K::Jump});
      patch(FalseFix);
      pop();
      emit({K::PushConst, 0, 0, 0, 0});
      push();
      patchOne(ToEnd);
      return;
    }

    case Op::Not:
      compile(T->child(0));
      emit({K::BoolNot});
      return;

    case Op::Eq:
    case Op::Iff:
      // Raw patterns are canonical per type (bools 0/1, bit-vectors
      // masked), so same-typed equality is word equality.
      if (!sameType(T)) {
        Ok = false;
        return;
      }
      binary(K::CmpEq, 0, T->child(0), T->child(1));
      return;

    case Op::Implies:
      // Eager like applyOp (only And/Or/Ite short-circuit).
      binary(K::Implies, 0, T->child(0), T->child(1));
      return;

    case Op::IntAdd:
      binary(K::AddMask, 64, T->child(0), T->child(1));
      return;
    case Op::IntSub:
      binary(K::SubMask, 64, T->child(0), T->child(1));
      return;
    case Op::IntMul:
      binary(K::MulMask, 64, T->child(0), T->child(1));
      return;
    case Op::IntNeg:
      compile(T->child(0));
      emit({K::NegMask, 0, 64});
      return;
    case Op::IntLe:
      binary(K::CmpSLe, 64, T->child(0), T->child(1));
      return;
    case Op::IntLt:
      binary(K::CmpSLt, 64, T->child(0), T->child(1));
      return;
    case Op::IntGe:
      binary(K::CmpSGe, 64, T->child(0), T->child(1));
      return;
    case Op::IntGt:
      binary(K::CmpSGt, 64, T->child(0), T->child(1));
      return;

    case Op::BvNeg:
    case Op::BvNot:
      compile(T->child(0));
      emit({T->op() == Op::BvNeg ? K::NegMask : K::NotMask, 0,
            static_cast<uint16_t>(T->type().width())});
      return;

    case Op::BvAdd:
    case Op::BvSub:
    case Op::BvMul:
    case Op::BvAnd:
    case Op::BvOr:
    case Op::BvXor:
    case Op::BvShl:
    case Op::BvLshr:
    case Op::BvAshr:
    case Op::BvUle:
    case Op::BvUlt:
    case Op::BvUge:
    case Op::BvUgt:
    case Op::BvSle:
    case Op::BvSlt:
    case Op::BvSge:
    case Op::BvSgt: {
      if (!sameType(T) || !T->child(0)->type().isBitVec()) {
        Ok = false;
        return;
      }
      uint16_t W = static_cast<uint16_t>(T->child(0)->type().width());
      K Kind;
      switch (T->op()) {
      case Op::BvAdd: Kind = K::AddMask; break;
      case Op::BvSub: Kind = K::SubMask; break;
      case Op::BvMul: Kind = K::MulMask; break;
      case Op::BvAnd: Kind = K::AndBits; break;
      case Op::BvOr:  Kind = K::OrBits; break;
      case Op::BvXor: Kind = K::XorBits; break;
      case Op::BvShl: Kind = K::Shl; break;
      case Op::BvLshr: Kind = K::Lshr; break;
      case Op::BvAshr: Kind = K::Ashr; break;
      case Op::BvUle: Kind = K::CmpULe; break;
      case Op::BvUlt: Kind = K::CmpULt; break;
      case Op::BvUge: Kind = K::CmpUGe; break;
      case Op::BvUgt: Kind = K::CmpUGt; break;
      case Op::BvSle: Kind = K::CmpSLe; break;
      case Op::BvSlt: Kind = K::CmpSLt; break;
      case Op::BvSge: Kind = K::CmpSGe; break;
      default:        Kind = K::CmpSGt; break;
      }
      binary(Kind, W, T->child(0), T->child(1));
      return;
    }

    case Op::Call: {
      const FuncDef *F = T->callee();
      // The GENIC lowering only emits non-recursive aux functions; a cycle
      // would make inlining diverge, so leave it to the generic tier.
      if (!F || T->arity() != F->ParamTypes.size() ||
          std::find(Active.begin(), Active.end(), F) != Active.end()) {
        Ok = false;
        return;
      }
      Frame Callee{F, 0, {}};
      for (unsigned I = 0; I != T->arity(); ++I) {
        TermRef Arg = T->child(I);
        if (Arg->type() != F->ParamTypes[I]) {
          Ok = false; // Mistyped application: generic tier's problem.
          return;
        }
        compile(Arg);
        Callee.ArgTypes.push_back(Arg->type());
      }
      Callee.Base = Depth - static_cast<unsigned>(T->arity());
      Active.push_back(F);
      Frames.push_back(std::move(Callee));
      if (F->Domain) {
        if (!F->Domain->type().isBool()) {
          Ok = false;
          return;
        }
        PatchList DomTrue, DomFalse;
        cond(F->Domain, DomTrue, DomFalse, /*FallThroughTrue=*/true);
        patch(DomTrue);
        failOn(DomFalse); // Outside the domain: undefined, no fire.
      }
      compile(F->Body);
      Frames.pop_back();
      Active.pop_back();
      emit({K::Ret, 0, 0, static_cast<uint32_t>(T->arity())});
      pop(static_cast<unsigned>(T->arity()));
      return;
    }
    }
    Ok = false; // Unreachable with a complete Op switch; belt-and-braces.
  }

  unsigned Lookahead;
  const Type &InputType;
  FusedRuleProgram P;
  unsigned Depth = 0;
  /// Positions below this are reachable via a resolved jump join; a
  /// comparison ending at or before it cannot fuse with a branch.
  uint32_t Barrier = 0;
  bool Ok = true;
  std::vector<Frame> Frames;
  std::vector<const FuncDef *> Active;
  PatchList FailFixes;
};

} // namespace

std::optional<FusedRuleProgram>
genic::fuseRule(TermRef Guard, const std::vector<TermRef> &Outputs,
                unsigned Lookahead, const Type &InputType) {
  return Fuser(Lookahead, InputType).fuse(Guard, Outputs);
}

// The right-hand operand of a binary instruction: inline constant or stack.
#define GENIC_RHS                                                            \
  uint64_t B = (I.Flags & FusedInstr::RhsImm) ? I.Imm : S[--SP]

// A comparison: pops its operand(s) and either pushes the boolean or, when
// fused with a branch, jumps on the matching outcome.
#define GENIC_CMP_CASE(KIND, EXPR)                                           \
  case K::KIND: {                                                            \
    GENIC_RHS;                                                               \
    uint64_t Av = S[--SP];                                                   \
    bool C = (EXPR);                                                         \
    if (uint8_t Br = I.Flags & (FusedInstr::BrFalse | FusedInstr::BrTrue)) { \
      if (C == (Br == FusedInstr::BrTrue))                                   \
        PC = I.A - 1;                                                        \
    } else {                                                                 \
      S[SP++] = C;                                                           \
    }                                                                        \
    break;                                                                   \
  }

// An ALU op: rewrites the new top of stack in place.
#define GENIC_ALU_CASE(KIND, EXPR)                                           \
  case K::KIND: {                                                            \
    GENIC_RHS;                                                               \
    uint64_t &Av = S[SP - 1];                                                \
    Av = (EXPR);                                                             \
    break;                                                                   \
  }

bool genic::runFusedRule(const FusedRuleProgram &P, const Value *Window,
                         ValueList &Out, uint64_t *S) {
  const size_t OutMark = Out.size();
  size_t SP = 0;
  const FusedInstr *Code = P.Code.data();
  // Every program ends in End or Fail and all jumps are forward, so the
  // loop terminates without a bound check.
  for (uint32_t PC = 0;; ++PC) {
    const FusedInstr &I = Code[PC];
    switch (I.Kind) {
    case K::PushConst:
      S[SP++] = I.Imm;
      break;
    case K::PushVar:
      S[SP++] = Window[I.A].rawBits();
      break;
    case K::PushSlot:
      S[SP++] = S[I.A];
      break;
    case K::BoolNot:
      S[SP - 1] ^= 1;
      break;
    case K::NegMask:
      S[SP - 1] = (~S[SP - 1] + 1) & Value::maskOf(I.W);
      break;
    case K::NotMask:
      S[SP - 1] = ~S[SP - 1] & Value::maskOf(I.W);
      break;
    case K::Jump:
      PC = I.A - 1; // Loop increment lands on A.
      break;
    case K::JumpIfFalsePop:
      if (!S[--SP])
        PC = I.A - 1;
      break;
    case K::JumpIfTruePop:
      if (S[--SP])
        PC = I.A - 1;
      break;
    case K::Ret: {
      uint64_t R = S[--SP];
      SP -= I.A;
      S[SP++] = R;
      break;
    }
    case K::EmitBool:
      Out.push_back(Value::boolVal(S[--SP] != 0));
      break;
    case K::EmitInt:
      Out.push_back(Value::intVal(static_cast<int64_t>(S[--SP])));
      break;
    case K::EmitBv:
      Out.push_back(Value::bitVecVal(S[--SP], I.W));
      break;
    case K::End:
      assert(SP == 0 && "fused rule must consume its whole stack");
      return true;
    case K::Fail:
      Out.resize(OutMark);
      return false;

      GENIC_CMP_CASE(CmpEq, Av == B)
      GENIC_CMP_CASE(CmpULe, Av <= B)
      GENIC_CMP_CASE(CmpULt, Av < B)
      GENIC_CMP_CASE(CmpUGe, Av >= B)
      GENIC_CMP_CASE(CmpUGt, Av > B)
      GENIC_CMP_CASE(CmpSLe, signExtend(Av, I.W) <= signExtend(B, I.W))
      GENIC_CMP_CASE(CmpSLt, signExtend(Av, I.W) < signExtend(B, I.W))
      GENIC_CMP_CASE(CmpSGe, signExtend(Av, I.W) >= signExtend(B, I.W))
      GENIC_CMP_CASE(CmpSGt, signExtend(Av, I.W) > signExtend(B, I.W))

      GENIC_ALU_CASE(Implies, (Av ^ 1) | B)
      GENIC_ALU_CASE(AddMask, (Av + B) & Value::maskOf(I.W))
      GENIC_ALU_CASE(SubMask, (Av - B) & Value::maskOf(I.W))
      GENIC_ALU_CASE(MulMask, (Av * B) & Value::maskOf(I.W))
      GENIC_ALU_CASE(AndBits, Av & B)
      GENIC_ALU_CASE(OrBits, Av | B)
      GENIC_ALU_CASE(XorBits, Av ^ B)
      // SMT-LIB semantics: shifting by >= width yields zero (Ashr
      // saturates to the sign bit).
      GENIC_ALU_CASE(Shl, B >= I.W ? 0 : (Av << B) & Value::maskOf(I.W))
      GENIC_ALU_CASE(Lshr, B >= I.W ? 0 : Av >> B)
      GENIC_ALU_CASE(
          Ashr, B >= I.W
                    ? ((Av >> (I.W - 1)) & 1 ? Value::maskOf(I.W) : 0)
                    : ((Av >> (I.W - 1)) & 1
                           ? (Av >> B) |
                                 (Value::maskOf(I.W) &
                                  ~(Value::maskOf(I.W) >> B))
                           : Av >> B))
    }
  }
}

#undef GENIC_RHS
#undef GENIC_CMP_CASE
#undef GENIC_ALU_CASE
