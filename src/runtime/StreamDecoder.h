//===- runtime/StreamDecoder.h - Chunked streaming s-EFT execution --------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chunked streaming API over a CompiledSeft: feed input in arbitrary
/// slices, receive decoded output incrementally, and close the stream with
/// finish(). The decoder carries O(lookahead) state between feeds — current
/// state, at most StallBound-1 unconsumed symbols, and (on the byte API) up
/// to one partial symbol of raw bytes — never the whole input. Splitting one
/// input differently across feed() calls cannot change the concatenated
/// output or the final status; tests/stream_decode_test.cpp fuzzes this
/// against whole-input Seft::transduceFunctional.
///
/// Dispatch is the greedy single pass justified in runtime/CompiledSeft.h:
/// mid-stream, fire the first continuing rule (transition order) whose
/// guard holds and whose outputs are defined; if none fires once StallBound
/// symbols are buffered, the input is rejected for good. finish() then runs
/// the finalizers whose lookahead equals the symbols left. Errors are coded
/// Status values per the PR 5 contract — Error for malformed input,
/// Cancelled/Timeout for budget exhaustion (output produced before the
/// budget ran out has already been appended, so callers degrade to a
/// partial-output report) — and are sticky: a failed decoder keeps
/// returning the same status until reset().
///
/// Byte framing: the byte API applies when both alphabet types are
/// bit-vectors of byte-aligned width, mapping each symbol to width/8
/// little-endian bytes (for the Table-1 corpus: 1 byte for the 8-bit
/// coders, 4 for the 32-bit ones). Int-alphabet machines (the synthetic
/// corpus) use the symbol API directly.
///
/// Like the CompiledSeft it executes, a StreamDecoder is single-threaded.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_RUNTIME_STREAMDECODER_H
#define GENIC_RUNTIME_STREAMDECODER_H

#include "runtime/CompiledSeft.h"
#include "support/Deadline.h"
#include "support/Metrics.h"

#include <cstdint>
#include <span>
#include <vector>

namespace genic {

struct StreamDecoderOptions {
  /// Budget for the whole stream; checked between rule firings (every few
  /// hundred), so exhaustion surfaces as Status::cancelled within
  /// microseconds, with all output decoded so far already delivered.
  CancellationToken Cancel;
  /// When set, the decoder maintains decode.bytes / decode.symbols counters
  /// and the decode.chunk.us per-feed latency histogram there (new
  /// genic-metrics-v1 keys; the schema is append-only).
  MetricsRegistry *Metrics = nullptr;
  /// Paranoia mode for differential tests: evaluate EVERY dispatchable rule
  /// instead of stopping at the first hit, and fail with Status::error if
  /// two fire with different effects — a live violation of the Def. 3.7
  /// determinism the greedy dispatch relies on. Costs one guard run per
  /// sibling rule per step; off in production.
  bool CheckAmbiguity = false;
};

/// Streaming executor; see file comment. The CompiledSeft (and the
/// TermFactory under it) must outlive the decoder.
class StreamDecoder {
public:
  explicit StreamDecoder(const CompiledSeft &Machine,
                         StreamDecoderOptions Opts = {});

  /// Decodes \p Chunk, appending any output bytes to \p Out. Requires
  /// byte-framable alphabet types (see file comment). On a non-Ok return,
  /// output decoded before the failure has still been appended.
  Status feed(std::span<const uint8_t> Chunk, std::vector<uint8_t> &Out);

  /// Ends the stream: runs the finalizer for the carried tail, appends the
  /// final output bytes to \p Out. Rejects trailing partial symbols and
  /// inputs no finalizer accepts.
  Status finish(std::vector<uint8_t> &Out);

  /// Symbol-level variants for machines whose alphabets are not
  /// byte-framable (Int theory) and for tests that construct ValueLists.
  Status feedSymbols(std::span<const Value> Chunk, ValueList &Out);
  Status finishSymbols(ValueList &Out);

  /// Returns the decoder to its initial state (fresh stream, clears any
  /// sticky error and the running stats).
  void reset();

  struct Stats {
    uint64_t BytesIn = 0;
    uint64_t BytesOut = 0;
    uint64_t SymbolsIn = 0;
    uint64_t SymbolsOut = 0;
    uint64_t Chunks = 0;     ///< feed() / feedSymbols() calls
    uint64_t RulesFired = 0; ///< continuing rules + the finalizer
  };
  const Stats &stats() const { return TheStats; }

  /// Unconsumed symbols carried between feeds — the O(lookahead) invariant:
  /// after any feed this is < max(StallBound of the current state, 1).
  size_t carriedSymbols() const { return Buf.size() - Pos; }

  /// True once finish()/finishSymbols() succeeded.
  bool finished() const { return Ended && Sticky.isOk(); }

private:
  /// Greedily fires continuing rules on the buffered symbols until no more
  /// can (yet) fire; appends their outputs. Sets the sticky status on
  /// definite rejection, ambiguity, or cancellation.
  Status pump(ValueList &Out);
  /// Fires \p R on the window at Pos if its guard holds and outputs are
  /// defined; appends outputs to \p Out on success.
  bool tryRule(const CompiledSeftRule &R, ValueList &Out);
  Status fail(Status S) {
    Sticky = std::move(S);
    return Sticky;
  }
  /// Bytes per symbol for \p T under the byte framing; 0 when \p T is not a
  /// byte-aligned bit-vector type.
  static unsigned bytesPerSymbol(const Type &T);
  /// Appends SymScratch to \p Out under the little-endian byte framing and
  /// counts the bytes.
  void serializeOut(unsigned OutBps, std::vector<uint8_t> &Out);

  const CompiledSeft &M;
  StreamDecoderOptions Opts;
  /// Resolved once; null when Opts.Metrics is null.
  MetricsCounter *BytesCtr = nullptr;
  MetricsCounter *SymbolsCtr = nullptr;
  MetricsHistogram *ChunkHist = nullptr;

  unsigned Q;            ///< Current state.
  ValueList Buf;         ///< Unconsumed symbols; compacted after each feed.
  size_t Pos = 0;        ///< Consumed prefix of Buf.
  ValueList OutScratch;  ///< Reused per-rule output staging.
  std::vector<uint64_t> FusedStack; ///< Scratch for fused rule execution.
  ValueList SymScratch;  ///< Byte API: reused symbol-output buffer.
  std::vector<uint8_t> PendingBytes; ///< Byte API: partial symbol carry.
  unsigned CancelCheckCountdown;
  Status Sticky;
  bool Ended = false;
  Stats TheStats;
};

} // namespace genic

#endif // GENIC_RUNTIME_STREAMDECODER_H
