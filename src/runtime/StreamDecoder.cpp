//===- runtime/StreamDecoder.cpp -------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "runtime/StreamDecoder.h"

#include "support/Trace.h"

#include <string>

using namespace genic;

namespace {
/// Rule firings between cancellation-token reads. A rule is a handful of
/// bytecode instructions, so this bounds the overshoot past a deadline to
/// microseconds while keeping the atomic read off the per-symbol path.
constexpr unsigned CancelCheckInterval = 256;
} // namespace

StreamDecoder::StreamDecoder(const CompiledSeft &Machine,
                             StreamDecoderOptions Options)
    : M(Machine), Opts(std::move(Options)), Q(Machine.initial()),
      FusedStack(Machine.maxFusedStack()),
      CancelCheckCountdown(CancelCheckInterval) {
  if (Opts.Metrics) {
    BytesCtr = &Opts.Metrics->counter("decode.bytes");
    SymbolsCtr = &Opts.Metrics->counter("decode.symbols");
    ChunkHist = &Opts.Metrics->histogram("decode.chunk.us");
  }
}

unsigned StreamDecoder::bytesPerSymbol(const Type &T) {
  if (!T.isBitVec() || T.width() % 8 != 0)
    return 0;
  return T.width() / 8;
}

void StreamDecoder::reset() {
  Q = M.initial();
  Buf.clear();
  Pos = 0;
  OutScratch.clear();
  SymScratch.clear();
  PendingBytes.clear();
  CancelCheckCountdown = CancelCheckInterval;
  Sticky = Status::ok();
  Ended = false;
  TheStats = Stats();
}

bool StreamDecoder::tryRule(const CompiledSeftRule &R, ValueList &Out) {
  // Fast tier: guard, inlined aux calls, and outputs in one unboxed
  // program (runtime/FusedRule.h). It rolls its outputs back itself on a
  // non-firing rule, so outside the ambiguity audit (which compares
  // per-rule outputs, staged in OutScratch) it writes straight to Out.
  if (R.Fused && !Opts.CheckAmbiguity)
    return runFusedRule(*R.Fused, Buf.data() + Pos, Out, FusedStack.data());

  OutScratch.clear();
  if (R.Fused) {
    if (!runFusedRule(*R.Fused, Buf.data() + Pos, OutScratch,
                      FusedStack.data()))
      return false;
  } else {
    CompiledEvalCache &Cache = M.cache();
    Env Window(Buf.data() + Pos, R.Lookahead);
    if (!Cache.runProgramBool(*R.Guard, Window))
      return false;
    for (const CompiledProgram *F : R.Outputs) {
      std::optional<Value> V = Cache.runProgram(*F, Window);
      if (!V)
        return false; // Undefined output: the non-symbolic rule doesn't exist.
      OutScratch.push_back(*V);
    }
  }
  Out.insert(Out.end(), OutScratch.begin(), OutScratch.end());
  return true;
}

Status StreamDecoder::pump(ValueList &Out) {
  while (true) {
    size_t Avail = Buf.size() - Pos;
    if (Avail == 0)
      return Status::ok();
    const CompiledSeftState &St = M.state(Q);

    const CompiledSeftRule *Fired = nullptr;
    ValueList FirstOutputs; // CheckAmbiguity only.
    for (const CompiledSeftRule &R : St.Continuing) {
      if (R.Lookahead > Avail)
        continue;
      if (Fired && !Opts.CheckAmbiguity)
        break;
      if (!Fired) {
        if (tryRule(R, Out)) {
          Fired = &R;
          if (Opts.CheckAmbiguity)
            FirstOutputs = OutScratch;
        }
        continue;
      }
      // Ambiguity audit: a sibling that also fires must be the same rule in
      // disguise (Def. 3.7 case (a)), i.e. agree on effect.
      ValueList Probe;
      if (!tryRule(R, Probe))
        continue;
      if (R.To != Fired->To || R.Lookahead != Fired->Lookahead ||
          OutScratch != FirstOutputs)
        return fail(Status::error(
            "streaming decode: ambiguous dispatch at state q" +
            std::to_string(Q) + " (rules #" + std::to_string(Fired->Index) +
            " and #" + std::to_string(R.Index) +
            " both fire with different effects)"));
    }

    if (!Fired) {
      if (Avail >= St.StallBound)
        // Every continuing guard was evaluable and false, and more input
        // than any finalizer's lookahead remains: definite reject.
        return fail(Status::error(
            "streaming decode: input rejected at state q" + std::to_string(Q) +
            " after " + std::to_string(TheStats.SymbolsIn - Avail) +
            " symbols (no rule applies)"));
      return Status::ok(); // Need more input to decide.
    }

    TheStats.SymbolsOut += Fired->Outputs.size();
    ++TheStats.RulesFired;
    Q = Fired->To;
    Pos += Fired->Lookahead;

    if (--CancelCheckCountdown == 0) {
      CancelCheckCountdown = CancelCheckInterval;
      if (Opts.Cancel.cancelled())
        return fail(Status::cancelled(
            "streaming decode: budget exhausted mid-stream after " +
            std::to_string(TheStats.SymbolsOut) + " output symbols"));
    }
  }
}

Status StreamDecoder::feedSymbols(std::span<const Value> Chunk,
                                  ValueList &Out) {
  if (!Sticky.isOk())
    return Sticky;
  if (Ended)
    return fail(Status::error("streaming decode: feed() after finish()"));
  if (Opts.Cancel.cancelled())
    return fail(Status::cancelled("streaming decode: budget exhausted"));

  TraceSpan Span("decode.feed", "decode");
  Span.arg("symbols", static_cast<int64_t>(Chunk.size()));

  ++TheStats.Chunks;
  TheStats.SymbolsIn += Chunk.size();
  if (SymbolsCtr)
    SymbolsCtr->add(Chunk.size());

  const Type &InTy = M.inputType();
  for (const Value &V : Chunk) {
    if (V.type() != InTy)
      return fail(Status::error(
          "streaming decode: input symbol of type " + V.type().str() +
          ", machine reads " + InTy.str()));
    Buf.push_back(V);
  }

  Status S = pump(Out);

  // Compact the consumed prefix so the carried state stays O(lookahead):
  // after a quiescent pump at most StallBound-1 symbols remain.
  Buf.erase(Buf.begin(), Buf.begin() + Pos);
  Pos = 0;

  if (ChunkHist)
    ChunkHist->observe(static_cast<uint64_t>(Span.seconds() * 1e6));
  return S;
}

Status StreamDecoder::finishSymbols(ValueList &Out) {
  if (!Sticky.isOk())
    return Sticky;
  if (Ended)
    return fail(Status::error("streaming decode: finish() called twice"));
  if (Opts.Cancel.cancelled())
    return fail(Status::cancelled("streaming decode: budget exhausted"));

  TraceSpan Span("decode.finish", "decode");

  // Feeds leave the decoder quiescent, but an empty stream (no feed at all)
  // or a feed of zero symbols must still work.
  if (Status S = pump(Out); !S.isOk())
    return S;

  size_t Avail = Buf.size() - Pos;
  const CompiledSeftState &St = M.state(Q);

  // Only finalizers with exactly the remaining lookahead can end the run;
  // pump() already established that no continuing rule fires (and shorter
  // continuing rules could only lead to configurations this loop handles
  // after pump() takes them).
  const CompiledSeftRule *Fired = nullptr;
  ValueList FirstOutputs;
  for (const CompiledSeftRule &R : St.Finalizers) {
    if (R.Lookahead != Avail)
      continue;
    if (Fired && !Opts.CheckAmbiguity)
      break;
    if (!Fired) {
      if (tryRule(R, Out)) {
        Fired = &R;
        if (Opts.CheckAmbiguity)
          FirstOutputs = OutScratch;
      }
      continue;
    }
    ValueList Probe;
    if (!tryRule(R, Probe))
      continue;
    if (OutScratch != FirstOutputs) // Def. 3.7 case (b): must agree.
      return fail(Status::error(
          "streaming decode: ambiguous finalizers at state q" +
          std::to_string(Q) + " (rules #" + std::to_string(Fired->Index) +
          " and #" + std::to_string(R.Index) + " disagree)"));
  }

  if (!Fired)
    return fail(Status::error(
        "streaming decode: input rejected at end of stream (state q" +
        std::to_string(Q) + ", " + std::to_string(Avail) +
        " trailing symbols, no finalizer applies)"));

  TheStats.SymbolsOut += Fired->Outputs.size();
  ++TheStats.RulesFired;
  Pos += Fired->Lookahead;
  Buf.erase(Buf.begin(), Buf.begin() + Pos);
  Pos = 0;
  Ended = true;
  return Status::ok();
}

Status StreamDecoder::feed(std::span<const uint8_t> Chunk,
                           std::vector<uint8_t> &Out) {
  if (!Sticky.isOk())
    return Sticky;
  // Mirror feedSymbols() before touching the byte-framing state: a
  // rejected feed must not mutate the partial-symbol carry or the byte
  // counters.
  if (Ended)
    return fail(Status::error("streaming decode: feed() after finish()"));
  if (Opts.Cancel.cancelled())
    return fail(Status::cancelled("streaming decode: budget exhausted"));
  unsigned InBps = bytesPerSymbol(M.inputType());
  unsigned OutBps = bytesPerSymbol(M.outputType());
  if (InBps == 0 || OutBps == 0)
    return fail(Status::error(
        "streaming decode: byte API needs byte-aligned bit-vector alphabets "
        "(machine reads " + M.inputType().str() + ", writes " +
        M.outputType().str() + "); use the symbol API"));

  // Frame bytes into little-endian symbols, carrying a partial symbol.
  ValueList Symbols;
  Symbols.reserve((PendingBytes.size() + Chunk.size()) / InBps + 1);
  if (InBps == 1) {
    // Byte-wide symbols (most of the corpus): no partial-symbol carry.
    for (uint8_t B : Chunk)
      Symbols.push_back(Value::bitVecVal(B, 8));
  } else {
    for (uint8_t B : Chunk) {
      PendingBytes.push_back(B);
      if (PendingBytes.size() == InBps) {
        uint64_t Raw = 0;
        for (unsigned I = 0; I != InBps; ++I)
          Raw |= uint64_t(PendingBytes[I]) << (8 * I);
        Symbols.push_back(Value::bitVecVal(Raw, M.inputType().width()));
        PendingBytes.clear();
      }
    }
  }

  TheStats.BytesIn += Chunk.size();
  if (BytesCtr)
    BytesCtr->add(Chunk.size());

  SymScratch.clear();
  Status S = feedSymbols(Symbols, SymScratch);

  // Serialize even on failure: output decoded before the failure is the
  // partial result the caller reports.
  serializeOut(OutBps, Out);
  return S;
}

void StreamDecoder::serializeOut(unsigned OutBps, std::vector<uint8_t> &Out) {
  Out.reserve(Out.size() + SymScratch.size() * OutBps);
  if (OutBps == 1) {
    for (const Value &V : SymScratch)
      Out.push_back(static_cast<uint8_t>(V.getBits()));
  } else {
    for (const Value &V : SymScratch) {
      uint64_t Raw = V.getBits();
      for (unsigned I = 0; I != OutBps; ++I)
        Out.push_back(static_cast<uint8_t>(Raw >> (8 * I)));
    }
  }
  TheStats.BytesOut += SymScratch.size() * OutBps;
}

Status StreamDecoder::finish(std::vector<uint8_t> &Out) {
  if (!Sticky.isOk())
    return Sticky;
  unsigned InBps = bytesPerSymbol(M.inputType());
  unsigned OutBps = bytesPerSymbol(M.outputType());
  if (InBps == 0 || OutBps == 0)
    return fail(Status::error(
        "streaming decode: byte API needs byte-aligned bit-vector alphabets "
        "(machine reads " + M.inputType().str() + ", writes " +
        M.outputType().str() + "); use the symbol API"));
  if (!PendingBytes.empty())
    return fail(Status::error(
        "streaming decode: stream ends inside a symbol (" +
        std::to_string(PendingBytes.size()) + " of " + std::to_string(InBps) +
        " bytes)"));

  SymScratch.clear();
  Status S = finishSymbols(SymScratch);
  serializeOut(OutBps, Out);
  return S;
}
