//===- ipc/WorkerProtocol.h - Coordinator/worker message vocabulary -------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request/response vocabulary spoken over the worker channel (framed
/// IpcMessages, see Frame.h / Message.h). Every request carries an "op"
/// field and gets exactly one reply; a reply either carries the op's result
/// fields or an "err" + "code" pair (code = the numeric StatusCode the
/// coordinator should surface).
///
/// Ops:
///
///   ping                                        -> {}
///   load  {source, fault, solver-timeout-ms,
///          budget-ms, incremental, trace,
///          trace-req}                           -> {}
///   det   {begin, end}                          -> {event}
///   ti    {begin, end}                          -> {event}
///   amb   {hull, fp, cfg-base, visited,
///          cfg-p, cfg-q, cfg-d}                 -> {fin, disc-cfg, disc-i1,
///                                                   disc-i2, disc-err}
///   collect {}                                  -> {metrics..., trace,
///                                                   trace-dropped}
///   quit  {}                                    -> {}
///
/// det/ti "event" and amb "fin" use ShardNoEvent (UINT64_MAX) for "no event
/// in my range". The amb discovery lists are parallel arrays (one entry per
/// discovery, in scan order). Workers never ship terms — every field is
/// plain data, which is what keeps out-of-process verdicts byte-identical
/// to in-process ones (the winning event is always re-checked in the
/// coordinator's shared session).
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_IPC_WORKERPROTOCOL_H
#define GENIC_IPC_WORKERPROTOCOL_H

#include "ipc/Message.h"
#include "support/Metrics.h"
#include "support/Result.h"
#include "support/Trace.h"

#include <string>
#include <vector>

namespace genic {

namespace workerop {
inline constexpr const char *Ping = "ping";
inline constexpr const char *Load = "load";
inline constexpr const char *Det = "det";
inline constexpr const char *Ti = "ti";
inline constexpr const char *Amb = "amb";
inline constexpr const char *Collect = "collect";
inline constexpr const char *Quit = "quit";
} // namespace workerop

/// Builds the error reply for \p S ("err" = message, "code" = numeric
/// StatusCode).
IpcMessage makeErrorReply(const Status &S);

/// Reconstructs the Status a reply's "err"/"code" fields describe; returns
/// Ok when the reply carries no "err" field.
Status replyStatus(const IpcMessage &Reply);

/// Encodes \p S into \p M under "m.c.<name>" (counters, decimal),
/// "m.g.<name>" (gauges, decimal, possibly negative), and "m.h.<name>"
/// (histograms, packed u64 list: count, sum-us, max-us, then the buckets).
void encodeMetricsSnapshot(const MetricsSnapshot &S, IpcMessage &M);

/// Inverse of encodeMetricsSnapshot; ignores unrelated fields, fails on a
/// malformed metric value.
Result<MetricsSnapshot> decodeMetricsSnapshot(const IpcMessage &M);

/// Serializes trace events one per line, fields separated by the ASCII
/// unit separator. Separator bytes inside names (never present in
/// practice — span names are identifier-like literals) are replaced with
/// '_' rather than escaped.
std::string encodeTraceEvents(const std::vector<ExternalTraceEvent> &Events);

/// Inverse of encodeTraceEvents; fails on a malformed line.
Result<std::vector<ExternalTraceEvent>>
decodeTraceEvents(const std::string &Blob);

} // namespace genic

#endif // GENIC_IPC_WORKERPROTOCOL_H
