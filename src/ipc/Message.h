//===- ipc/Message.h - Field-map payloads for worker frames ---------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The payload format inside a frame: an ordered list of (key, value) byte
/// strings, length-prefixed per field so values (program source, trace
/// JSON) need no escaping. Typed accessors cover the handful of shapes the
/// worker protocol uses — strings, unsigned integers, and packed uint64
/// lists (8-byte little-endian each, for visited-key sets and discovery
/// tuples).
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_IPC_MESSAGE_H
#define GENIC_IPC_MESSAGE_H

#include "support/Result.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace genic {

/// One decoded message: a key → raw-bytes map. Keys are unique; encoding
/// is deterministic (std::map iteration order).
struct IpcMessage {
  std::map<std::string, std::string> Fields;

  bool has(const std::string &Key) const { return Fields.count(Key) != 0; }

  void setStr(const std::string &Key, std::string Value) {
    Fields[Key] = std::move(Value);
  }
  void setU64(const std::string &Key, uint64_t Value) {
    Fields[Key] = std::to_string(Value);
  }
  void setU64List(const std::string &Key, const std::vector<uint64_t> &Vs);

  /// Missing keys report an error naming the key — protocol drift should
  /// fail loudly, not read empty defaults.
  Result<std::string> getStr(const std::string &Key) const;
  Result<uint64_t> getU64(const std::string &Key) const;
  Result<std::vector<uint64_t>> getU64List(const std::string &Key) const;
};

/// Serializes \p M: u32 field count, then per field u32 key length, key
/// bytes, u32 value length, value bytes (all little-endian).
std::string encodeIpcMessage(const IpcMessage &M);

/// Parses a payload produced by encodeIpcMessage; rejects truncated input,
/// trailing bytes, and duplicate keys.
Result<IpcMessage> decodeIpcMessage(const std::string &Payload);

} // namespace genic

#endif // GENIC_IPC_MESSAGE_H
