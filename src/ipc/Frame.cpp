//===- ipc/Frame.cpp - Length-prefixed frames over a file descriptor ------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "ipc/Frame.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace genic {

namespace {

using Clock = std::chrono::steady_clock;

/// Remaining milliseconds until \p Deadline, clamped to [0, INT_MAX]; -1
/// when no deadline was requested (poll's "block forever").
int remainingMs(bool HasDeadline, Clock::time_point Deadline) {
  if (!HasDeadline)
    return -1;
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Deadline - Clock::now())
                  .count();
  if (Left <= 0)
    return 0;
  if (Left > 1000 * 60 * 60)
    return 1000 * 60 * 60;
  return static_cast<int>(Left);
}

Status peerClosed(const char *What) {
  return Status::error(std::string("ipc: peer closed (") + What + ")");
}

/// Waits until \p Fd is ready for \p Events. Returns ok on ready, timeout
/// on deadline, error on poll failure or hangup-without-data.
Status waitReady(int Fd, short Events, bool HasDeadline,
                 Clock::time_point Deadline) {
  for (;;) {
    pollfd P{};
    P.fd = Fd;
    P.events = Events;
    int N = ::poll(&P, 1, remainingMs(HasDeadline, Deadline));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::error(std::string("ipc: poll failed: ") +
                           std::strerror(errno));
    }
    if (N == 0)
      return Status::timeout("ipc: frame deadline expired");
    // POLLHUP/POLLERR with readable data still delivers the data on read;
    // let the read call observe EOF itself so partial frames drain.
    return Status::ok();
  }
}

Status readExact(int Fd, char *Buf, size_t Len, bool HasDeadline,
                 Clock::time_point Deadline) {
  size_t Off = 0;
  while (Off < Len) {
    if (Status S = waitReady(Fd, POLLIN, HasDeadline, Deadline); !S)
      return S;
    ssize_t N = ::read(Fd, Buf + Off, Len - Off);
    if (N == 0)
      return peerClosed("eof");
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      if (errno == ECONNRESET || errno == EPIPE)
        return peerClosed(std::strerror(errno));
      return Status::error(std::string("ipc: read failed: ") +
                           std::strerror(errno));
    }
    Off += static_cast<size_t>(N);
  }
  return Status::ok();
}

Status writeExact(int Fd, const char *Buf, size_t Len, bool HasDeadline,
                  Clock::time_point Deadline) {
  size_t Off = 0;
  while (Off < Len) {
    if (Status S = waitReady(Fd, POLLOUT, HasDeadline, Deadline); !S)
      return S;
    // MSG_NOSIGNAL turns a closed peer into EPIPE instead of a fatal
    // SIGPIPE — a worker dying between our poll and this write must
    // surface as a peer-closed Status the supervisor can handle, not kill
    // the coordinator. Pipes (ENOTSOCK) fall back to plain write.
    ssize_t N = ::send(Fd, Buf + Off, Len - Off, MSG_NOSIGNAL);
    if (N < 0 && errno == ENOTSOCK)
      N = ::write(Fd, Buf + Off, Len - Off);
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      if (errno == EPIPE || errno == ECONNRESET)
        return peerClosed(std::strerror(errno));
      return Status::error(std::string("ipc: write failed: ") +
                           std::strerror(errno));
    }
    Off += static_cast<size_t>(N);
  }
  return Status::ok();
}

} // namespace

Status writeFrame(int Fd, const std::string &Payload, int DeadlineMs) {
  if (Payload.size() > MaxFrameBytes)
    return Status::error("ipc: frame exceeds size limit");
  bool HasDeadline = DeadlineMs > 0;
  auto Deadline = Clock::now() + std::chrono::milliseconds(DeadlineMs);
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  char Header[4] = {static_cast<char>(Len & 0xff),
                    static_cast<char>((Len >> 8) & 0xff),
                    static_cast<char>((Len >> 16) & 0xff),
                    static_cast<char>((Len >> 24) & 0xff)};
  if (Status S = writeExact(Fd, Header, 4, HasDeadline, Deadline); !S)
    return S;
  return writeExact(Fd, Payload.data(), Payload.size(), HasDeadline,
                    Deadline);
}

Result<std::string> readFrame(int Fd, int DeadlineMs) {
  bool HasDeadline = DeadlineMs > 0;
  auto Deadline = Clock::now() + std::chrono::milliseconds(DeadlineMs);
  char Header[4];
  if (Status S = readExact(Fd, Header, 4, HasDeadline, Deadline); !S)
    return S;
  uint32_t Len = static_cast<uint32_t>(static_cast<unsigned char>(Header[0])) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(Header[1]))
                  << 8) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(Header[2]))
                  << 16) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(Header[3]))
                  << 24);
  if (Len > MaxFrameBytes)
    return Status::error("ipc: incoming frame exceeds size limit");
  std::string Payload(Len, '\0');
  if (Len > 0)
    if (Status S = readExact(Fd, Payload.data(), Len, HasDeadline, Deadline);
        !S)
      return S;
  return Payload;
}

bool isPeerClosed(const Status &S) {
  return S.code() == StatusCode::Error &&
         S.message().rfind("ipc: peer closed", 0) == 0;
}

} // namespace genic
