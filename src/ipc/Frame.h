//===- ipc/Frame.h - Length-prefixed frames over a file descriptor --------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire unit of the coordinator/worker channel: a 32-bit little-endian
/// payload length followed by that many bytes, written to and read from a
/// plain file descriptor (one end of a socketpair or pipe). Reads take a
/// deadline so a hung peer surfaces as Status::timeout rather than blocking
/// the supervisor forever; a closed peer (EOF, EPIPE, ECONNRESET) surfaces
/// as an ordinary error whose message starts with "ipc: peer closed", which
/// is how the supervisor distinguishes a crash from a hang.
///
/// No dependencies beyond support/ — the layer stays usable from both the
/// engine and the standalone worker binary.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_IPC_FRAME_H
#define GENIC_IPC_FRAME_H

#include "support/Result.h"

#include <string>

namespace genic {

/// Frames larger than this are refused on both ends: a corrupt length
/// prefix must not turn into an unbounded allocation.
constexpr uint32_t MaxFrameBytes = 64u * 1024 * 1024;

/// Writes one length-prefixed frame. Blocks until the payload is fully
/// written or \p DeadlineMs elapses (0 = no deadline). Handles partial
/// writes and EINTR; EPIPE is reported as a peer-closed error.
Status writeFrame(int Fd, const std::string &Payload, int DeadlineMs = 0);

/// Reads one length-prefixed frame. Blocks until a full frame arrives or
/// \p DeadlineMs elapses (0 = no deadline). A clean EOF before the first
/// header byte — and any EOF mid-frame — reports as "ipc: peer closed".
Result<std::string> readFrame(int Fd, int DeadlineMs = 0);

/// True when \p S is a frame-layer error caused by the peer going away
/// (EOF / broken pipe / connection reset) rather than by a deadline.
bool isPeerClosed(const Status &S);

} // namespace genic

#endif // GENIC_IPC_FRAME_H
