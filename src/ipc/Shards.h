//===- ipc/Shards.h - Verdict-only shard dispatch interface ---------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seam between the verification phases and the out-of-process worker
/// pool. The phases (determinism, Lemma 4.7 transition injectivity, the
/// Lemma 4.14 ambiguity product) already run their parallel scans under a
/// verdict-only contract: chunks export plain data — indices, booleans —
/// and every witness is re-derived serially in the shared session. A
/// ShardDispatcher carries exactly that data shape across a process
/// boundary, so the phases stay byte-identical whether a chunk ran on a
/// thread or in a child process.
///
/// Header-only and dependency-free on purpose: transducer/ and automata/
/// reference the interface without linking the engine, and the engine's
/// WorkerSupervisor implements it without the phases knowing about
/// processes, pipes, or restarts.
///
/// Failure contract: a shard call that cannot be completed (worker crashed
/// twice, pool exhausted) returns a failed Result whose Status the caller
/// must propagate — the phase then degrades to SolverError through the
/// partial-report machinery. Dispatchers never fall back to running the
/// shard in-process; crash isolation is the point.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_IPC_SHARDS_H
#define GENIC_IPC_SHARDS_H

#include "support/Result.h"

#include <cstdint>
#include <vector>

namespace genic {

/// "No event in this shard" marker for the scan calls.
constexpr uint64_t ShardNoEvent = UINT64_MAX;

/// One (P, Q, D) configuration of the ambiguity product frontier, in the
/// coordinator's state numbering.
struct AmbShardConfig {
  uint64_t P = 0;
  uint64_t Q = 0;
  bool D = false;
};

/// One step discovery made by an ambiguity shard: at frontier index
/// \p Cfg (absolute, coordinator numbering), expanded-step indices \p I1
/// and \p I2 overlapped (or the overlap query failed, \p IsError). The
/// coordinator re-derives every other Discovery field — target key,
/// divergence bit — from its own expanded product, and re-checks IsError
/// entries in the shared session, exactly as the in-process merge does.
struct AmbShardDiscovery {
  uint64_t Cfg = 0;
  uint64_t I1 = 0;
  uint64_t I2 = 0;
  bool IsError = false;
};

/// An ambiguity shard's verdict data: the first frontier index with a
/// finisher-overlap event (ShardNoEvent if none) plus the step
/// discoveries in scan order.
struct AmbShardResult {
  uint64_t FinEvent = ShardNoEvent;
  std::vector<AmbShardDiscovery> Discoveries;
};

/// Fans verdict-only scan shards to some execution substrate (in practice
/// the engine's WorkerSupervisor over genic-worker processes). Calls are
/// thread-safe and blocking; concurrent calls draw from a pool of
/// workers. All indices refer to the canonical orders both sides derive
/// independently from the loaded program (hash-consing makes re-lowering
/// deterministic): the suspicious-pair list for determinism, the
/// lookahead-rule list for transition injectivity, and the expanded
/// product for ambiguity (guarded by \p Fingerprint).
class ShardDispatcher {
public:
  virtual ~ShardDispatcher() = default;

  /// Number of worker processes backing the dispatcher (> 0).
  virtual unsigned procs() const = 0;

  /// Scans suspicious pairs [Begin, End); returns the first index whose
  /// pair-violation query was sat or failed, or ShardNoEvent.
  virtual Result<uint64_t> determinismShard(uint64_t Begin, uint64_t End) = 0;

  /// Scans lookahead rules [Begin, End); returns the first index whose
  /// transition-injectivity query was sat or failed, or ShardNoEvent.
  virtual Result<uint64_t> transitionInjectivityShard(uint64_t Begin,
                                                     uint64_t End) = 0;

  /// Scans one chunk of an ambiguity BFS level against the output
  /// automaton built with \p Hull. \p Fingerprint is the coordinator's
  /// structural hash of the expanded product — a worker whose own
  /// expansion disagrees refuses the shard. \p CfgBase is the absolute
  /// frontier index of LevelChunk[0]; \p VisitedKeys snapshots the
  /// visited set (prior levels only, per the merge contract).
  virtual Result<AmbShardResult>
  ambiguityShard(bool Hull, uint64_t Fingerprint, uint64_t CfgBase,
                 const std::vector<uint64_t> &VisitedKeys,
                 const std::vector<AmbShardConfig> &LevelChunk) = 0;
};

} // namespace genic

#endif // GENIC_IPC_SHARDS_H
