//===- ipc/Message.cpp - Field-map payloads for worker frames -------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "ipc/Message.h"

namespace genic {

namespace {

void putU32(std::string &Out, uint32_t V) {
  Out.push_back(static_cast<char>(V & 0xff));
  Out.push_back(static_cast<char>((V >> 8) & 0xff));
  Out.push_back(static_cast<char>((V >> 16) & 0xff));
  Out.push_back(static_cast<char>((V >> 24) & 0xff));
}

bool takeU32(const std::string &In, size_t &Off, uint32_t &V) {
  if (In.size() - Off < 4)
    return false;
  V = static_cast<uint32_t>(static_cast<unsigned char>(In[Off])) |
      (static_cast<uint32_t>(static_cast<unsigned char>(In[Off + 1])) << 8) |
      (static_cast<uint32_t>(static_cast<unsigned char>(In[Off + 2])) << 16) |
      (static_cast<uint32_t>(static_cast<unsigned char>(In[Off + 3])) << 24);
  Off += 4;
  return true;
}

} // namespace

void IpcMessage::setU64List(const std::string &Key,
                            const std::vector<uint64_t> &Vs) {
  std::string Raw;
  Raw.reserve(Vs.size() * 8);
  for (uint64_t V : Vs)
    for (int B = 0; B < 8; ++B)
      Raw.push_back(static_cast<char>((V >> (8 * B)) & 0xff));
  Fields[Key] = std::move(Raw);
}

Result<std::string> IpcMessage::getStr(const std::string &Key) const {
  auto It = Fields.find(Key);
  if (It == Fields.end())
    return Status::error("ipc: message missing field \"" + Key + "\"");
  return It->second;
}

Result<uint64_t> IpcMessage::getU64(const std::string &Key) const {
  Result<std::string> Raw = getStr(Key);
  if (!Raw)
    return Raw.status();
  const std::string &S = *Raw;
  if (S.empty() || S.size() > 20)
    return Status::error("ipc: field \"" + Key + "\" is not an integer");
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return Status::error("ipc: field \"" + Key + "\" is not an integer");
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  return V;
}

Result<std::vector<uint64_t>> IpcMessage::getU64List(
    const std::string &Key) const {
  Result<std::string> Raw = getStr(Key);
  if (!Raw)
    return Raw.status();
  if (Raw->size() % 8 != 0)
    return Status::error("ipc: field \"" + Key + "\" is not a u64 list");
  std::vector<uint64_t> Vs(Raw->size() / 8);
  for (size_t I = 0; I < Vs.size(); ++I) {
    uint64_t V = 0;
    for (int B = 7; B >= 0; --B)
      V = (V << 8) |
          static_cast<uint64_t>(static_cast<unsigned char>((*Raw)[I * 8 + B]));
    Vs[I] = V;
  }
  return Vs;
}

std::string encodeIpcMessage(const IpcMessage &M) {
  std::string Out;
  putU32(Out, static_cast<uint32_t>(M.Fields.size()));
  for (const auto &[Key, Value] : M.Fields) {
    putU32(Out, static_cast<uint32_t>(Key.size()));
    Out += Key;
    putU32(Out, static_cast<uint32_t>(Value.size()));
    Out += Value;
  }
  return Out;
}

Result<IpcMessage> decodeIpcMessage(const std::string &Payload) {
  IpcMessage M;
  size_t Off = 0;
  uint32_t Count = 0;
  if (!takeU32(Payload, Off, Count))
    return Status::error("ipc: truncated message header");
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t KeyLen = 0, ValueLen = 0;
    if (!takeU32(Payload, Off, KeyLen) || Payload.size() - Off < KeyLen)
      return Status::error("ipc: truncated message key");
    std::string Key = Payload.substr(Off, KeyLen);
    Off += KeyLen;
    if (!takeU32(Payload, Off, ValueLen) || Payload.size() - Off < ValueLen)
      return Status::error("ipc: truncated message value");
    if (!M.Fields.emplace(std::move(Key), Payload.substr(Off, ValueLen))
             .second)
      return Status::error("ipc: duplicate message key");
    Off += ValueLen;
  }
  if (Off != Payload.size())
    return Status::error("ipc: trailing bytes after message");
  return M;
}

} // namespace genic
