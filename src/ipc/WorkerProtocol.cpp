//===- ipc/WorkerProtocol.cpp ---------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "ipc/WorkerProtocol.h"

#include "support/StringUtils.h"

#include <cstdlib>

using namespace genic;

IpcMessage genic::makeErrorReply(const Status &S) {
  IpcMessage M;
  M.setStr("err", S.message());
  M.setU64("code", static_cast<uint64_t>(S.code()));
  return M;
}

Status genic::replyStatus(const IpcMessage &Reply) {
  if (!Reply.has("err"))
    return Status::ok();
  std::string Message = Reply.getStr("err").unwrap();
  uint64_t Code = 0;
  if (Result<uint64_t> C = Reply.getU64("code"))
    Code = *C;
  switch (static_cast<StatusCode>(Code)) {
  case StatusCode::Timeout:
    return Status::timeout(std::move(Message));
  case StatusCode::Cancelled:
    return Status::cancelled(std::move(Message));
  case StatusCode::SolverError:
    return Status::solverError(std::move(Message));
  default:
    return Status::error(std::move(Message));
  }
}

void genic::encodeMetricsSnapshot(const MetricsSnapshot &S, IpcMessage &M) {
  for (const auto &[Name, V] : S.Counters)
    M.setU64("m.c." + Name, V);
  for (const auto &[Name, V] : S.Gauges)
    M.setStr("m.g." + Name, std::to_string(V));
  for (const auto &[Name, H] : S.Histograms) {
    std::vector<uint64_t> Packed;
    Packed.reserve(3 + H.Buckets.size());
    Packed.push_back(H.Count);
    Packed.push_back(H.SumUs);
    Packed.push_back(H.MaxUs);
    Packed.insert(Packed.end(), H.Buckets.begin(), H.Buckets.end());
    M.setU64List("m.h." + Name, Packed);
  }
}

Result<MetricsSnapshot> genic::decodeMetricsSnapshot(const IpcMessage &M) {
  MetricsSnapshot S;
  for (const auto &[Key, Value] : M.Fields) {
    if (startsWith(Key, "m.c.")) {
      Result<uint64_t> V = M.getU64(Key);
      if (!V)
        return V.status();
      S.Counters[Key.substr(4)] = *V;
    } else if (startsWith(Key, "m.g.")) {
      S.Gauges[Key.substr(4)] =
          static_cast<int64_t>(std::strtoll(Value.c_str(), nullptr, 10));
    } else if (startsWith(Key, "m.h.")) {
      Result<std::vector<uint64_t>> Packed = M.getU64List(Key);
      if (!Packed)
        return Packed.status();
      if (Packed->size() != 3 + MetricsHistogram::NumBuckets)
        return Status::error("malformed histogram metric: " + Key);
      MetricsSnapshot::Histogram &H = S.Histograms[Key.substr(4)];
      H.Count = (*Packed)[0];
      H.SumUs = (*Packed)[1];
      H.MaxUs = (*Packed)[2];
      for (unsigned I = 0; I < MetricsHistogram::NumBuckets; ++I)
        H.Buckets[I] = (*Packed)[3 + I];
    }
  }
  return S;
}

namespace {

constexpr char FieldSep = '\x1f';

void appendSanitized(std::string &Out, const std::string &S) {
  for (char C : S)
    Out += (C == FieldSep || C == '\n') ? '_' : C;
}

} // namespace

std::string
genic::encodeTraceEvents(const std::vector<ExternalTraceEvent> &Events) {
  std::string Out;
  for (const ExternalTraceEvent &E : Events) {
    Out += E.Ph;
    Out += FieldSep;
    Out += std::to_string(E.Tid);
    Out += FieldSep;
    Out += std::to_string(E.TsUs);
    Out += FieldSep;
    Out += std::to_string(E.DurUs);
    Out += FieldSep;
    Out += std::to_string(E.Req);
    Out += FieldSep;
    appendSanitized(Out, E.Name);
    Out += FieldSep;
    appendSanitized(Out, E.Cat);
    Out += FieldSep;
    appendSanitized(Out, E.Arg1Name);
    Out += FieldSep;
    Out += std::to_string(E.Arg1);
    Out += FieldSep;
    appendSanitized(Out, E.Arg2Name);
    Out += FieldSep;
    Out += std::to_string(E.Arg2);
    Out += '\n';
  }
  return Out;
}

Result<std::vector<ExternalTraceEvent>>
genic::decodeTraceEvents(const std::string &Blob) {
  std::vector<ExternalTraceEvent> Events;
  for (const std::string &Line : split(Blob, '\n')) {
    if (Line.empty())
      continue;
    std::vector<std::string> F = split(Line, FieldSep);
    if (F.size() != 11 || F[0].size() != 1)
      return Status::error("malformed trace event line");
    ExternalTraceEvent E;
    E.Ph = F[0][0];
    E.Tid = static_cast<int>(std::strtol(F[1].c_str(), nullptr, 10));
    E.TsUs = std::strtoull(F[2].c_str(), nullptr, 10);
    E.DurUs = std::strtoull(F[3].c_str(), nullptr, 10);
    E.Req = std::strtoull(F[4].c_str(), nullptr, 10);
    E.Name = F[5];
    E.Cat = F[6];
    E.Arg1Name = F[7];
    E.Arg1 = std::strtoll(F[8].c_str(), nullptr, 10);
    E.Arg2Name = F[9];
    E.Arg2 = std::strtoll(F[10].c_str(), nullptr, 10);
    Events.push_back(std::move(E));
  }
  return Events;
}
