//===- transducer/Invert.cpp -----------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "transducer/Invert.h"

#include "support/Timer.h"

#include <algorithm>

using namespace genic;

const char *genic::toString(RuleOutcome O) {
  switch (O) {
  case RuleOutcome::Inverted:
    return "Inverted";
  case RuleOutcome::NotInjective:
    return "NotInjective";
  case RuleOutcome::Timeout:
    return "Timeout";
  case RuleOutcome::SolverError:
    return "SolverError";
  }
  return "Unknown";
}

RuleOutcome genic::outcomeForStatus(const Status &St) {
  switch (St.code()) {
  case StatusCode::Timeout:
  case StatusCode::Cancelled:
    return RuleOutcome::Timeout;
  case StatusCode::SolverError:
    return RuleOutcome::SolverError;
  default:
    return RuleOutcome::NotInjective;
  }
}

bool InversionOutcome::complete() const {
  for (const RuleInversionRecord &R : Records)
    if (!R.Inverted)
      return false;
  return true;
}

unsigned InversionOutcome::degradedRules() const {
  unsigned N = 0;
  for (const RuleInversionRecord &R : Records)
    if (R.Outcome == RuleOutcome::Timeout ||
        R.Outcome == RuleOutcome::SolverError)
      ++N;
  return N;
}

double InversionOutcome::totalSeconds() const {
  double Total = 0;
  for (const RuleInversionRecord &R : Records)
    Total += R.Seconds;
  return Total;
}

double InversionOutcome::maxRuleSeconds() const {
  double Max = 0;
  for (const RuleInversionRecord &R : Records)
    Max = std::max(Max, R.Seconds);
  return Max;
}

namespace {

/// Greedy redundant-conjunct elimination: drops any conjunct implied by the
/// remaining ones, largest first. The g-derived guards contain membership
/// disjunctions that the round-trip equations already entail; stripping
/// them is what keeps the emitted programs close to hand-written size
/// (Figure 6).
/// Largest variable index mentioned anywhere in \p T, or -1 if none.
int64_t maxVarIndex(TermRef T) {
  int64_t Max = T->isVar() ? static_cast<int64_t>(T->varIndex()) : -1;
  for (TermRef C : T->children())
    Max = std::max(Max, maxVarIndex(C));
  return Max;
}

TermRef simplifyGuard(TermFactory &F, Solver &S, TermRef Guard) {
  std::vector<TermRef> Conjuncts;
  if (Guard->op() == Op::And)
    Conjuncts.assign(Guard->children().begin(), Guard->children().end());
  else
    Conjuncts.push_back(Guard);
  std::sort(Conjuncts.begin(), Conjuncts.end(),
            [](TermRef A, TermRef B) { return A->size() > B->size(); });

  // Incremental mode: assert (s_j -> C_j) and (t_j -> not C_j) once in a
  // scope, with the selector variables s_j / t_j at indices above every
  // guard variable so they are fresh. Dropping conjunct I is then one
  // checkSatAssuming({s_j : j kept, j != I} u {t_I}) — the solver keeps
  // the implication skeleton and only the assumption set varies across the
  // O(n^2) candidate tests. Selector indices are a pure function of the
  // conjunct order, so the verdict sequence is jobs-invariant.
  if (S.control().Incremental && Conjuncts.size() > 1) {
    int64_t Base = -1;
    for (TermRef C : Conjuncts)
      Base = std::max(Base, maxVarIndex(C));
    unsigned KeepBase = static_cast<unsigned>(Base + 1);
    unsigned DropBase = KeepBase + Conjuncts.size();
    ScopedAssertions Scope(S);
    std::vector<TermRef> Keep, Drop;
    for (size_t J = 0; J < Conjuncts.size(); ++J) {
      Keep.push_back(F.mkVar(KeepBase + J, Type::boolTy()));
      Drop.push_back(F.mkVar(DropBase + J, Type::boolTy()));
      Scope.add(F.mkImplies(Keep[J], Conjuncts[J]));
      Scope.add(F.mkImplies(Drop[J], F.mkNot(Conjuncts[J])));
    }
    std::vector<bool> Alive(Conjuncts.size(), true);
    for (size_t I = 0; I < Conjuncts.size(); ++I) {
      std::vector<TermRef> Assume;
      for (size_t J = 0; J < Conjuncts.size(); ++J)
        if (Alive[J] && J != I)
          Assume.push_back(Keep[J]);
      Assume.push_back(Drop[I]);
      if (S.checkSatAssuming(Assume) == SatResult::Unsat)
        Alive[I] = false;
    }
    std::vector<TermRef> Kept;
    for (size_t J = 0; J < Conjuncts.size(); ++J)
      if (Alive[J])
        Kept.push_back(Conjuncts[J]);
    return F.mkAnd(std::move(Kept));
  }

  for (size_t I = 0; I < Conjuncts.size();) {
    std::vector<TermRef> Rest;
    for (size_t J = 0; J < Conjuncts.size(); ++J)
      if (J != I)
        Rest.push_back(Conjuncts[J]);
    // Implied iff Rest /\ not C is unsatisfiable (with Rest empty this is
    // a validity check, dropping guards of total bijections). Unknown
    // keeps the conjunct — sound either way; the guard is exact by
    // construction.
    TermRef Query = F.mkAnd(F.mkAnd(Rest), F.mkNot(Conjuncts[I]));
    if (S.checkSat(Query) == SatResult::Unsat)
      Conjuncts.erase(Conjuncts.begin() + I);
    else
      ++I;
  }
  return F.mkAnd(std::move(Conjuncts));
}

} // namespace

RuleInversionResult genic::invertOneRule(const SeftTransition &T,
                                         unsigned Index,
                                         const Type &InputType,
                                         const Type &OutputType, Solver &S,
                                         const RecoverySynthesizer &Synthesize) {
  Timer RuleTimer;
  RuleInversionResult R;
  RuleInversionRecord &Record = R.Record;
  Record.Rule = Index;
  const uint64_t RetriesBefore = S.stats().Retries;
  auto NoteRetries = [&] {
    Record.Retries =
        static_cast<unsigned>(S.stats().Retries - RetriesBefore);
  };

  ImagePredicate P{T.Guard, T.Outputs, T.Lookahead};

  // Dead rule (guard never fires): nothing to invert.
  Result<bool> Fires = S.isSat(T.Guard);
  if (!Fires) {
    Record.Seconds = RuleTimer.seconds();
    Record.Outcome = outcomeForStatus(Fires.status());
    Record.Error = "guard satisfiability: " + Fires.status().message();
    NoteRetries();
    return R;
  }
  if (!*Fires) {
    Record.Seconds = RuleTimer.seconds();
    Record.Inverted = true;
    Record.Outcome = RuleOutcome::Inverted;
    NoteRetries();
    return R;
  }

  // Output functions g_i, one per original input position.
  SeftTransition Inv;
  Inv.From = T.From;
  Inv.To = T.To;
  Inv.Lookahead = T.Outputs.size();
  bool Ok = true;
  for (unsigned I = 0; I < T.Lookahead; ++I) {
    Result<TermRef> G = Synthesize(P, I, InputType);
    if (!G) {
      Record.Outcome = outcomeForStatus(G.status());
      Record.Error = "output " + std::to_string(I) + ": " +
                     G.status().message();
      Ok = false;
      break;
    }
    Inv.Outputs.push_back(*G);
  }

  // Guard psi(y) == exists x . phi(x) /\ y = f(x). With the recoveries g
  // in hand there is an exact quantifier-free form — the witness x must
  // be g(y) itself:
  //   psi(y) == phi(g(y)) /\ f(g(y)) = y /\ definedness of all calls.
  // (If y = f(x) with phi(x), then g(f(x)) = x by the synthesis spec, so
  // g(y) is a witness; conversely g(y) witnesses the existential.) This
  // sidesteps quantifier elimination entirely, and the definedness
  // conjuncts are the "pred" guards of the paper's Figure 3.
  if (Ok) {
    TermFactory &F = S.factory();
    std::vector<TermRef> Conjuncts;
    TermRef PhiG = F.substitute(T.Guard, Inv.Outputs);
    Conjuncts.push_back(F.calleeDomains(PhiG));
    Conjuncts.push_back(PhiG);
    for (unsigned J = 0, K = T.Outputs.size(); J != K; ++J) {
      TermRef FG = F.substitute(T.Outputs[J], Inv.Outputs);
      Conjuncts.push_back(F.calleeDomains(FG));
      Conjuncts.push_back(
          F.mkEq(FG, F.mkVar(J, OutputType)));
    }
    for (TermRef G : Inv.Outputs)
      Conjuncts.push_back(F.calleeDomains(G));
    Inv.Guard = simplifyGuard(F, S, F.mkAnd(std::move(Conjuncts)));
  }
  Record.Seconds = RuleTimer.seconds();
  Record.Inverted = Ok;
  NoteRetries();
  if (Ok) {
    Record.Outcome = RuleOutcome::Inverted;
    // A rule with empty output inverts to a lookahead-0 rule, which is
    // only well-formed as a finalizer; for non-finalizers the rule is
    // dropped with an explanatory record (such rules make the transducer
    // non-injective anyway unless their guard pins a unique tuple).
    if (Inv.Lookahead == 0 && Inv.To != Seft::FinalState && T.Lookahead > 0) {
      Record.Inverted = false;
      Record.Outcome = RuleOutcome::NotInjective;
      Record.Error = "rule consumes input but writes nothing; its inverse "
                     "is not expressible as an s-EFT rule";
      return R;
    }
    R.Transition = std::move(Inv);
  }
  return R;
}

Result<InversionOutcome> genic::invertSeft(
    const Seft &A, Solver &S, const RecoverySynthesizer &Synthesize) {
  // The inverse swaps input and output types but keeps the state structure
  // (Theorem 5.4: A^-1 = (Q, q0, { r^-1 | r in Delta })).
  InversionOutcome Out{
      Seft(A.numStates(), A.initial(), A.outputType(), A.inputType()),
      {}};

  const auto &Ts = A.transitions();
  for (unsigned Index = 0, E = Ts.size(); Index != E; ++Index) {
    RuleInversionResult R = invertOneRule(Ts[Index], Index, A.inputType(),
                                          A.outputType(), S, Synthesize);
    if (R.Transition)
      Out.Inverse.addTransition(std::move(*R.Transition));
    Out.Records.push_back(std::move(R.Record));
  }
  return Out;
}
