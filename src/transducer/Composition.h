//===- transducer/Composition.h - Bounded inverse verification ------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic verification that one transducer inverts another on all inputs
/// whose runs take at most K rules — the library-level counterpart of the
/// equivalence checking the paper cites for validating encoder/decoder
/// pairs (D'Antoni & Veanes, CAV'13), restricted to bounded path length so
/// that every obligation is a quantifier-free query:
///
///   for every A-path p (<= K rules) with symbolic input x:
///     coverage:   guard_p(x)  ->  some B-path accepts f_p(x)
///     identity:   guard_p(x) /\ guard_q(f_p(x))  ->  g_q(f_p(x)) = x
///
/// Theorem 5.4 guarantees unbounded correctness for inverses produced by
/// this library; this check independently validates that claim (and any
/// hand-written pair) up to the bound, returning a concrete counterexample
/// input on failure.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_TRANSDUCER_COMPOSITION_H
#define GENIC_TRANSDUCER_COMPOSITION_H

#include "solver/Solver.h"
#include "support/Result.h"
#include "transducer/Seft.h"

#include <optional>
#include <string>

namespace genic {

/// A failure of B to invert A: a concrete input to A (whose image under A
/// either is rejected by B or maps back to something else).
struct CompositionCounterexample {
  ValueList Input;
  std::string Detail;
};

/// Verifies that for every input u accepted by \p A along a path of at most
/// \p MaxRules rules, \p B maps A(u) back to exactly u (with a unique
/// applicable B-path guard per check). Returns std::nullopt when verified,
/// a counterexample otherwise, or an error on solver failures. Both
/// machines must share one TermFactory.
Result<std::optional<CompositionCounterexample>>
verifyInverseBounded(const Seft &A, const Seft &B, Solver &S,
                     unsigned MaxRules);

} // namespace genic

#endif // GENIC_TRANSDUCER_COMPOSITION_H
