//===- transducer/Sampling.cpp ---------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "transducer/Sampling.h"

#include "term/Eval.h"

#include <unordered_map>

using namespace genic;

namespace {

/// A symbol tuple satisfying \p Guard: native rejection sampling first
/// (diverse and fast on loose guards), then a solver model.
Result<std::vector<Value>> instantiate(const SeftTransition &T, Solver &S,
                                       const Type &InputType,
                                       std::mt19937_64 &Rng) {
  auto RandomValue = [&] {
    if (InputType.isInt()) {
      int64_t Span = (Rng() % 8 == 0) ? 4096 : 64;
      return Value::intVal(static_cast<int64_t>(Rng() % (2 * Span + 1)) -
                           Span);
    }
    return Value::bitVecVal(Rng(), InputType.width());
  };
  for (unsigned Attempt = 0; Attempt < 64; ++Attempt) {
    std::vector<Value> Tuple;
    for (unsigned I = 0; I < T.Lookahead; ++I)
      Tuple.push_back(RandomValue());
    if (!evalBool(T.Guard, Tuple))
      continue;
    bool Defined = true;
    for (TermRef O : T.Outputs)
      Defined &= eval(O, Tuple).has_value();
    if (Defined)
      return Tuple;
  }
  std::vector<Type> Types(T.Lookahead, InputType);
  return S.getModel(T.Guard, Types);
}

} // namespace

Result<ValueList> genic::randomAcceptedInput(const Seft &A, Solver &S,
                                             std::mt19937_64 &Rng,
                                             unsigned TargetSteps) {
  // Satisfiability of each rule's guard, computed lazily once.
  std::unordered_map<unsigned, bool> Firable;
  auto CanFire = [&](unsigned Index) -> Result<bool> {
    auto It = Firable.find(Index);
    if (It != Firable.end())
      return It->second;
    Result<bool> Sat = S.isSat(A.transitions()[Index].Guard);
    if (!Sat)
      return Sat;
    Firable.emplace(Index, *Sat);
    return *Sat;
  };

  ValueList Input;
  unsigned State = A.initial();
  for (unsigned Step = 0, Limit = 10 * TargetSteps + 16; Step < Limit;
       ++Step) {
    std::vector<unsigned> Continuing, Finishing;
    for (unsigned I = 0, E = A.transitions().size(); I != E; ++I) {
      const SeftTransition &T = A.transitions()[I];
      if (T.From != State)
        continue;
      Result<bool> Ok = CanFire(I);
      if (!Ok)
        return Ok.status();
      if (!*Ok)
        continue;
      (T.To == Seft::FinalState ? Finishing : Continuing).push_back(I);
    }
    bool Finish = Continuing.empty() ||
                  (!Finishing.empty() && Step >= TargetSteps) ||
                  (!Finishing.empty() && Rng() % 8 == 0);
    if (Finish && Finishing.empty())
      return Status::error("random walk stuck: state " +
                           std::to_string(State) + " cannot finish");
    const std::vector<unsigned> &Pool = Finish ? Finishing : Continuing;
    const SeftTransition &T =
        A.transitions()[Pool[Rng() % Pool.size()]];
    Result<std::vector<Value>> Tuple =
        instantiate(T, S, A.inputType(), Rng);
    if (!Tuple)
      return Tuple.status();
    Input.insert(Input.end(), Tuple->begin(), Tuple->end());
    if (T.To == Seft::FinalState)
      return Input;
    State = T.To;
  }
  return Status::error("random walk did not terminate (is the machine "
                       "co-reachable?)");
}
