//===- transducer/Seft.h - Symbolic extended finite transducers -----------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The s-EFT model of Definition 3.2: a finite-state machine whose
/// transitions read l adjacent input symbols (the lookahead), check a guard
/// predicate over them, and append the results of output functions to the
/// output list. Finalizers (transitions targeting the virtual state
/// FinalState, written "•" in the paper) end a run with exactly their
/// lookahead symbols remaining.
///
/// Guards are responsible for definedness: the GENIC lowering conjoins the
/// domain predicates of partial auxiliary functions used in the outputs into
/// the transition guard, so that a firing transition always has defined
/// outputs. The semantics here re-checks definedness defensively.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_TRANSDUCER_SEFT_H
#define GENIC_TRANSDUCER_SEFT_H

#include "term/Term.h"
#include "term/Value.h"

#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace genic {

/// One rule of an s-EFT (Definition 3.2).
struct SeftTransition {
  unsigned From = 0;
  /// Target state, or Seft::FinalState for a finalizer.
  unsigned To = 0;
  /// Number of input symbols consumed. At least 1 for non-finalizers;
  /// finalizers may have lookahead 0 (they accept the empty remainder).
  unsigned Lookahead = 1;
  /// Guard over Var(0..Lookahead-1).
  TermRef Guard = nullptr;
  /// Output functions over Var(0..Lookahead-1); the transition appends
  /// [f_0(x), ..., f_k(x)] to the output list.
  std::vector<TermRef> Outputs;
};

/// A symbolic extended finite transducer; see file comment.
class Seft {
public:
  static constexpr unsigned FinalState = std::numeric_limits<unsigned>::max();

  Seft(unsigned NumStates, unsigned Initial, Type InputType, Type OutputType)
      : NumStates(NumStates), Initial(Initial), InputType(InputType),
        OutputType(OutputType) {}

  unsigned numStates() const { return NumStates; }
  unsigned initial() const { return Initial; }
  const Type &inputType() const { return InputType; }
  const Type &outputType() const { return OutputType; }
  const std::vector<SeftTransition> &transitions() const {
    return Transitions;
  }

  unsigned addState() { return NumStates++; }

  /// Appends a rule; asserts basic well-formedness.
  void addTransition(SeftTransition T);

  /// Maximum lookahead over all rules (the "lookahead of A", Def. 3.2).
  unsigned lookahead() const;

  /// All outputs of the transduction T_A(Input) (Definition 3.5), up to
  /// \p Cap results. Unambiguous transducers produce at most one.
  std::vector<ValueList> transduce(const ValueList &Input,
                                   unsigned Cap = 4) const;

  /// The unique output, or std::nullopt when the transduction is undefined.
  /// Asserts (in debug builds) that at most one output exists; use only on
  /// unambiguous transducers.
  std::optional<ValueList> transduceFunctional(const ValueList &Input) const;

  /// The unique accepting path of \p Input as a sequence of transition
  /// indices, or std::nullopt if the input is rejected. Use on unambiguous
  /// transducers.
  std::optional<std::vector<unsigned>> path(const ValueList &Input) const;

  /// Renders the transducer for debugging.
  std::string str() const;

private:
  unsigned NumStates;
  unsigned Initial;
  Type InputType;
  Type OutputType;
  std::vector<SeftTransition> Transitions;
};

} // namespace genic

#endif // GENIC_TRANSDUCER_SEFT_H
