//===- transducer/Determinism.cpp ------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "transducer/Determinism.h"

using namespace genic;

namespace {

/// The conjunction phi /\ phi' of Definition 3.7: predicates of different
/// arities are conjoined over the shared variable prefix (§3.3's lifting to
/// sigma^max(m,n)); terms already share variable indices, so this is mkAnd.
TermRef overlapGuard(TermFactory &F, const SeftTransition &A,
                     const SeftTransition &B) {
  return F.mkAnd(A.Guard, B.Guard);
}

Result<std::optional<DeterminismViolation>>
checkPair(Solver &S, const Seft &A, unsigned IA, unsigned IB) {
  TermFactory &F = S.factory();
  const SeftTransition &TA = A.transitions()[IA];
  const SeftTransition &TB = A.transitions()[IB];
  bool FinalA = TA.To == Seft::FinalState;
  bool FinalB = TB.To == Seft::FinalState;

  auto Witness = [&](const std::string &Reason)
      -> Result<std::optional<DeterminismViolation>> {
    unsigned N = std::max(TA.Lookahead, TB.Lookahead);
    std::vector<Type> Types(N, A.inputType());
    Result<std::vector<Value>> M = S.getModel(overlapGuard(F, TA, TB), Types);
    if (!M)
      return M.status();
    return std::optional<DeterminismViolation>(
        DeterminismViolation{IA, IB, *M, Reason});
  };

  // Case (c): one rule continues, the other finalizes. Overlap is only
  // harmless when the continuing rule looks further than the finalizer
  // (then no input length allows both to fire).
  if (FinalA != FinalB) {
    const SeftTransition &Continue = FinalA ? TB : TA;
    const SeftTransition &Finish = FinalA ? TA : TB;
    if (Continue.Lookahead > Finish.Lookahead)
      return std::optional<DeterminismViolation>(std::nullopt);
    Result<bool> Sat = S.isSat(overlapGuard(F, TA, TB));
    if (!Sat)
      return Sat.status();
    if (!*Sat)
      return std::optional<DeterminismViolation>(std::nullopt);
    return Witness("a continuing rule with lookahead <= a finalizer's "
                   "lookahead overlaps with it (Def. 3.7(c))");
  }

  // Case (b): two finalizers of different lookahead never compete (they
  // apply at different remaining lengths).
  if (FinalA && FinalB && TA.Lookahead != TB.Lookahead)
    return std::optional<DeterminismViolation>(std::nullopt);

  Result<bool> Sat = S.isSat(overlapGuard(F, TA, TB));
  if (!Sat)
    return Sat.status();
  if (!*Sat)
    return std::optional<DeterminismViolation>(std::nullopt);

  // Case (a): two continuing rules that overlap must be the same rule in
  // disguise: same target, same lookahead, equivalent outputs.
  if (!FinalA) {
    if (TA.To != TB.To)
      return Witness("overlapping rules continue to different states");
    if (TA.Lookahead != TB.Lookahead)
      return Witness("overlapping rules have different lookaheads");
  }
  // Shared for (a) and (b): outputs must agree where both fire.
  if (TA.Outputs.size() != TB.Outputs.size())
    return Witness("overlapping rules produce different output lengths");
  TermRef Overlap = overlapGuard(F, TA, TB);
  for (size_t I = 0, E = TA.Outputs.size(); I != E; ++I) {
    Result<bool> Same = S.equivalentUnder(Overlap, TA.Outputs[I],
                                          TB.Outputs[I]);
    if (!Same)
      return Same.status();
    if (!*Same)
      return Witness("overlapping rules disagree on output " +
                     std::to_string(I));
  }
  return std::optional<DeterminismViolation>(std::nullopt);
}

} // namespace

Result<std::optional<DeterminismViolation>>
genic::checkDeterminism(const Seft &A, Solver &S) {
  const auto &Ts = A.transitions();
  for (unsigned I = 0, E = Ts.size(); I != E; ++I)
    for (unsigned J = I + 1; J != E; ++J) {
      if (Ts[I].From != Ts[J].From)
        continue;
      Result<std::optional<DeterminismViolation>> R = checkPair(S, A, I, J);
      if (!R)
        return R;
      if (R->has_value())
        return R;
    }
  return std::optional<DeterminismViolation>(std::nullopt);
}
