//===- transducer/Determinism.cpp ------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "transducer/Determinism.h"

#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <atomic>
#include <limits>
#include <unordered_set>

using namespace genic;

namespace {

/// The conjunction phi /\ phi' of Definition 3.7: predicates of different
/// arities are conjoined over the shared variable prefix (§3.3's lifting to
/// sigma^max(m,n)); terms already share variable indices, so this is mkAnd.
TermRef overlapGuard(TermFactory &F, const SeftTransition &A,
                     const SeftTransition &B) {
  return F.mkAnd(A.Guard, B.Guard);
}

/// Definition 3.7 on one rule pair: the reason string when the pair
/// violates determinism, std::nullopt when the overlap is harmless. Verdict
/// only — witness models are extracted separately, so parallel workers can
/// run this against private sessions (pooled sessions must not export
/// terms, see SolverSessionPool.h) and only the winning pair re-queries the
/// shared session.
Result<std::optional<std::string>> pairViolation(Solver &S,
                                                 const SeftTransition &TA,
                                                 const SeftTransition &TB) {
  TermFactory &F = S.factory();
  bool FinalA = TA.To == Seft::FinalState;
  bool FinalB = TB.To == Seft::FinalState;

  // Case (c): one rule continues, the other finalizes. Overlap is only
  // harmless when the continuing rule looks further than the finalizer
  // (then no input length allows both to fire).
  if (FinalA != FinalB) {
    const SeftTransition &Continue = FinalA ? TB : TA;
    const SeftTransition &Finish = FinalA ? TA : TB;
    if (Continue.Lookahead > Finish.Lookahead)
      return std::optional<std::string>(std::nullopt);
    Result<bool> Sat = S.isSat(overlapGuard(F, TA, TB));
    if (!Sat)
      return Sat.status();
    if (!*Sat)
      return std::optional<std::string>(std::nullopt);
    return std::optional<std::string>(
        "a continuing rule with lookahead <= a finalizer's "
        "lookahead overlaps with it (Def. 3.7(c))");
  }

  // Case (b): two finalizers of different lookahead never compete (they
  // apply at different remaining lengths).
  if (FinalA && FinalB && TA.Lookahead != TB.Lookahead)
    return std::optional<std::string>(std::nullopt);

  Result<bool> Sat = S.isSat(overlapGuard(F, TA, TB));
  if (!Sat)
    return Sat.status();
  if (!*Sat)
    return std::optional<std::string>(std::nullopt);

  // Case (a): two continuing rules that overlap must be the same rule in
  // disguise: same target, same lookahead, equivalent outputs.
  if (!FinalA) {
    if (TA.To != TB.To)
      return std::optional<std::string>(
          "overlapping rules continue to different states");
    if (TA.Lookahead != TB.Lookahead)
      return std::optional<std::string>(
          "overlapping rules have different lookaheads");
  }
  // Shared for (a) and (b): outputs must agree where both fire.
  if (TA.Outputs.size() != TB.Outputs.size())
    return std::optional<std::string>(
        "overlapping rules produce different output lengths");
  TermRef Overlap = overlapGuard(F, TA, TB);
  for (size_t I = 0, E = TA.Outputs.size(); I != E; ++I) {
    Result<bool> Same = S.equivalentUnder(Overlap, TA.Outputs[I],
                                          TB.Outputs[I]);
    if (!Same)
      return Same.status();
    if (!*Same)
      return std::optional<std::string>(
          "overlapping rules disagree on output " + std::to_string(I));
  }
  return std::optional<std::string>(std::nullopt);
}

Result<std::optional<DeterminismViolation>>
checkPair(Solver &S, const Seft &A, unsigned IA, unsigned IB) {
  const SeftTransition &TA = A.transitions()[IA];
  const SeftTransition &TB = A.transitions()[IB];
  Result<std::optional<std::string>> V = pairViolation(S, TA, TB);
  if (!V)
    return V.status();
  if (!V->has_value())
    return std::optional<DeterminismViolation>(std::nullopt);
  unsigned N = std::max(TA.Lookahead, TB.Lookahead);
  std::vector<Type> Types(N, A.inputType());
  Result<std::vector<Value>> M =
      S.getModel(overlapGuard(S.factory(), TA, TB), Types);
  if (!M)
    return M.status();
  return std::optional<DeterminismViolation>(
      DeterminismViolation{IA, IB, *M, **V});
}

/// Clones a rule's terms into a worker session; From/To/Lookahead carry
/// over. The session cloner is memoized, so a rule is imported once per
/// session no matter how many pairs mention it.
SeftTransition importTransition(TermCloner &Import, const SeftTransition &T) {
  SeftTransition Out;
  Out.From = T.From;
  Out.To = T.To;
  Out.Lookahead = T.Lookahead;
  Out.Guard = Import.clone(T.Guard);
  Out.Outputs.reserve(T.Outputs.size());
  for (TermRef O : T.Outputs)
    Out.Outputs.push_back(Import.clone(O));
  return Out;
}

/// One chunk of the pair scan: leases a session, primes the chunk's
/// overlap-guard batch when the session is incremental, and walks the
/// pairs until the first event (violation or solver error). \p Cutoff,
/// when present, lets sibling chunks prune each other; a null cutoff (the
/// out-of-process shard path) only costs skipped pruning, never changes
/// which index is returned as a chunk's first event.
size_t scanPairRange(const Seft &A,
                     const std::vector<std::pair<unsigned, unsigned>> &Pairs,
                     size_t Begin, size_t End, SolverSessionPool &Pool,
                     std::atomic<size_t> *Cutoff) {
  const auto &Ts = A.transitions();
  MetricsPhaseScope WorkerPhase("determinism");
  SolverSessionPool::Lease Sess = Pool.lease();
  // Coalesce the chunk's overlap-guard queries into one selector-
  // literal batch so the pair scan below answers from the session's
  // sat memo. Pairs the Definition 3.7 shortcuts never query are
  // skipped; Unknowns fall back to the scan's individual queries, so
  // verdicts are unchanged.
  if (Sess->Slv.control().Incremental) {
    std::vector<TermRef> Queries;
    std::unordered_set<TermRef> InBatch;
    for (size_t K = Begin; K != End; ++K) {
      const SeftTransition &TA0 = Ts[Pairs[K].first];
      const SeftTransition &TB0 = Ts[Pairs[K].second];
      bool FinalA = TA0.To == Seft::FinalState;
      bool FinalB = TB0.To == Seft::FinalState;
      if (FinalA != FinalB) {
        const SeftTransition &Continue = FinalA ? TB0 : TA0;
        const SeftTransition &Finish = FinalA ? TA0 : TB0;
        if (Continue.Lookahead > Finish.Lookahead)
          continue;
      } else if (FinalA && FinalB && TA0.Lookahead != TB0.Lookahead) {
        continue;
      }
      TermRef Q = Sess->Factory.mkAnd(Sess->Import.clone(TA0.Guard),
                                      Sess->Import.clone(TB0.Guard));
      if (InBatch.insert(Q).second)
        Queries.push_back(Q);
    }
    if (Queries.size() > 1)
      Sess->Slv.checkSatBatch(Queries);
  }
  for (size_t K = Begin; K != End; ++K) {
    if (Cutoff && K > Cutoff->load(std::memory_order_relaxed))
      continue;
    SeftTransition TA = importTransition(Sess->Import, Ts[Pairs[K].first]);
    SeftTransition TB = importTransition(Sess->Import, Ts[Pairs[K].second]);
    Result<std::optional<std::string>> V = pairViolation(Sess->Slv, TA, TB);
    if (V && !V->has_value())
      continue;
    if (Cutoff) {
      size_t Cur = Cutoff->load(std::memory_order_relaxed);
      while (K < Cur && !Cutoff->compare_exchange_weak(
                            Cur, K, std::memory_order_relaxed)) {
      }
    }
    return K;
  }
  return SIZE_MAX;
}

} // namespace

std::vector<std::pair<unsigned, unsigned>>
genic::determinismPairList(const Seft &A) {
  const auto &Ts = A.transitions();
  std::vector<std::pair<unsigned, unsigned>> PairList;
  for (unsigned I = 0, E = Ts.size(); I != E; ++I)
    for (unsigned J = I + 1; J != E; ++J)
      if (Ts[I].From == Ts[J].From)
        PairList.push_back({I, J});
  return PairList;
}

size_t genic::scanDeterminismShard(
    const Seft &A, const std::vector<std::pair<unsigned, unsigned>> &Pairs,
    SolverSessionPool &Pool, size_t Begin, size_t End) {
  return scanPairRange(A, Pairs, Begin, End, Pool, nullptr);
}

Result<std::optional<DeterminismViolation>>
genic::checkDeterminism(const Seft &A, Solver &S) {
  const auto &Ts = A.transitions();
  for (unsigned I = 0, E = Ts.size(); I != E; ++I)
    for (unsigned J = I + 1; J != E; ++J) {
      if (Ts[I].From != Ts[J].From)
        continue;
      Result<std::optional<DeterminismViolation>> R = checkPair(S, A, I, J);
      if (!R)
        return R;
      if (R->has_value())
        return R;
    }
  return std::optional<DeterminismViolation>(std::nullopt);
}

Result<std::optional<DeterminismViolation>>
genic::checkDeterminism(const Seft &A, Solver &S,
                        const DeterminismOptions &Opts) {
  MetricsPhaseScope Phase("determinism");
  std::vector<std::pair<unsigned, unsigned>> PairList =
      determinismPairList(A);
  if (PairList.empty())
    return std::optional<DeterminismViolation>(std::nullopt);
  if (S.cancellation().cancelled())
    return Status::cancelled("determinism check: global deadline exhausted");

  SolverSessionPool LocalPool(S);
  SolverSessionPool &Pool = Opts.Sessions ? *Opts.Sessions : LocalPool;

  // Workers scan disjoint chunks of the lexicographic pair list against
  // pooled sessions, recording only the first pair index with an event
  // (violation or solver error). The verdicts are semantic, so the global
  // minimum is the exact pair the serial loop would have stopped at; its
  // full result — witness model included — is then recomputed in the shared
  // session, making the output independent of Jobs.
  size_t Min = SIZE_MAX;
  TraceSpan ScanSpan("determinism.scan");
  ScanSpan.arg("pairs", static_cast<int64_t>(PairList.size()));
  if (Opts.Workers && Opts.Workers->procs() > 0) {
    // Out-of-process path: ship contiguous pair ranges to the worker pool.
    // The merge below only consumes the global minimum event, which is
    // independent of how the list is chunked, so worker counts cannot
    // change the verdict. A shard the supervisor could not complete —
    // worker crashed on the retry too — poisons the phase to SolverError
    // instead of silently under-scanning.
    size_t NumChunks =
        std::min(PairList.size(), size_t(Opts.Workers->procs()) * 4);
    std::vector<size_t> FirstEvent(NumChunks, SIZE_MAX);
    std::vector<Status> ShardErr(NumChunks, Status::ok());
    ScanSpan.arg("workers", static_cast<int64_t>(Opts.Workers->procs()));
    ThreadPool TP(std::min<size_t>(Opts.Workers->procs(), NumChunks),
                  "detio");
    for (size_t C = 0; C != NumChunks; ++C) {
      size_t Begin = PairList.size() * C / NumChunks;
      size_t End = PairList.size() * (C + 1) / NumChunks;
      TP.submit([&, C, Begin, End] {
        Result<uint64_t> R = Opts.Workers->determinismShard(Begin, End);
        if (!R)
          ShardErr[C] = R.status();
        else if (*R != ShardNoEvent)
          FirstEvent[C] = static_cast<size_t>(*R);
      });
    }
    TP.wait();
    for (const Status &E : ShardErr)
      if (!E)
        return Status::solverError("determinism shard failed: " +
                                   E.message());
    for (size_t E : FirstEvent)
      Min = std::min(Min, E);
  } else {
    size_t Threads =
        std::min<size_t>(std::max(1u, Opts.Jobs), PairList.size());
    size_t NumChunks = std::min(PairList.size(), Threads * 4);
    std::vector<size_t> FirstEvent(NumChunks, SIZE_MAX);
    // Pairs past the earliest known event cannot influence the result; skip
    // them. The cutoff only ever decreases toward the true minimum, so no
    // pair below the final minimum is ever skipped.
    std::atomic<size_t> Cutoff{SIZE_MAX};

    ThreadPool TP(Threads, "det");
    for (size_t C = 0; C != NumChunks; ++C) {
      size_t Begin = PairList.size() * C / NumChunks;
      size_t End = PairList.size() * (C + 1) / NumChunks;
      TP.submit([&, C, Begin, End] {
        FirstEvent[C] = scanPairRange(A, PairList, Begin, End, Pool, &Cutoff);
      });
    }
    TP.wait();
    for (size_t E : FirstEvent)
      Min = std::min(Min, E);
  }
  if (Min == SIZE_MAX)
    return std::optional<DeterminismViolation>(std::nullopt);
  // Recompute from the event onward in the shared session. Normally the
  // first iteration reproduces the worker's verdict and returns; if the
  // shared session answers differently (a timeout flapped), the serial scan
  // simply continues, which is still a correct — just slower — result.
  for (size_t K = Min; K != PairList.size(); ++K) {
    Result<std::optional<DeterminismViolation>> R =
        checkPair(S, A, PairList[K].first, PairList[K].second);
    if (!R)
      return R;
    if (R->has_value())
      return R;
  }
  return std::optional<DeterminismViolation>(std::nullopt);
}
