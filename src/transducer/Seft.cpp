//===- transducer/Seft.cpp -------------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "transducer/Seft.h"

#include "term/Eval.h"
#include "term/Printer.h"

#include <cassert>
#include <functional>

using namespace genic;

void Seft::addTransition(SeftTransition T) {
  assert(T.From < NumStates && "transition from unknown state");
  assert((T.To == FinalState || T.To < NumStates) &&
         "transition to unknown state");
  assert((T.To == FinalState || T.Lookahead >= 1) &&
         "non-finalizer rules must consume at least one symbol");
  assert(T.Guard && "rule needs a guard");
  Transitions.push_back(std::move(T));
}

unsigned Seft::lookahead() const {
  unsigned L = 0;
  for (const SeftTransition &T : Transitions)
    L = std::max(L, T.Lookahead);
  return L;
}

namespace {

/// Evaluates whether rule \p T fires on the symbols at \p Pos and, if so,
/// appends its outputs to \p Out. Firing requires the guard to hold and
/// every output to be defined.
bool fire(const SeftTransition &T, const ValueList &Input, size_t Pos,
          ValueList &Out) {
  if (Pos + T.Lookahead > Input.size())
    return false;
  std::vector<Value> Window(Input.begin() + Pos,
                            Input.begin() + Pos + T.Lookahead);
  if (!evalBool(T.Guard, Window))
    return false;
  ValueList Produced;
  Produced.reserve(T.Outputs.size());
  for (TermRef F : T.Outputs) {
    std::optional<Value> V = eval(F, Window);
    if (!V)
      return false; // Output undefined: the non-symbolic rule does not exist.
    Produced.push_back(*V);
  }
  Out.insert(Out.end(), Produced.begin(), Produced.end());
  return true;
}

} // namespace

std::vector<ValueList> Seft::transduce(const ValueList &Input,
                                       unsigned Cap) const {
  std::vector<ValueList> Results;
  ValueList Out;
  // DFS over (state, position). Input positions only advance (lookahead >= 1
  // on non-finalizers), so the search terminates.
  std::function<void(unsigned, size_t)> Go = [&](unsigned State, size_t Pos) {
    if (Results.size() >= Cap)
      return;
    for (const SeftTransition &T : Transitions) {
      if (T.From != State)
        continue;
      if (T.To == FinalState && Pos + T.Lookahead != Input.size())
        continue;
      size_t Mark = Out.size();
      if (!fire(T, Input, Pos, Out))
        continue;
      if (T.To == FinalState)
        Results.push_back(Out);
      else
        Go(T.To, Pos + T.Lookahead);
      Out.resize(Mark);
      if (Results.size() >= Cap)
        return;
    }
  };
  Go(Initial, 0);
  return Results;
}

std::optional<ValueList> Seft::transduceFunctional(
    const ValueList &Input) const {
  std::vector<ValueList> Results = transduce(Input, 2);
  assert(Results.size() <= 1 &&
         "transduceFunctional on an ambiguous transducer");
  if (Results.empty())
    return std::nullopt;
  return Results.front();
}

std::optional<std::vector<unsigned>> Seft::path(const ValueList &Input) const {
  std::vector<unsigned> Trace;
  std::optional<std::vector<unsigned>> Found;
  ValueList Scratch;
  std::function<void(unsigned, size_t)> Go = [&](unsigned State, size_t Pos) {
    if (Found)
      return;
    for (unsigned I = 0, E = Transitions.size(); I != E; ++I) {
      const SeftTransition &T = Transitions[I];
      if (T.From != State)
        continue;
      if (T.To == FinalState && Pos + T.Lookahead != Input.size())
        continue;
      size_t Mark = Scratch.size();
      if (!fire(T, Input, Pos, Scratch))
        continue;
      Scratch.resize(Mark);
      Trace.push_back(I);
      if (T.To == FinalState)
        Found = Trace;
      else
        Go(T.To, Pos + T.Lookahead);
      Trace.pop_back();
      if (Found)
        return;
    }
  };
  Go(Initial, 0);
  return Found;
}

std::string Seft::str() const {
  std::string Out = "s-EFT(states=" + std::to_string(NumStates) +
                    ", initial=" + std::to_string(Initial) + ")\n";
  for (const SeftTransition &T : Transitions) {
    Out += "  q" + std::to_string(T.From) + " --" + printTerm(T.Guard) + "/[";
    for (size_t I = 0, E = T.Outputs.size(); I != E; ++I) {
      if (I)
        Out += ", ";
      Out += printTerm(T.Outputs[I]);
    }
    Out += "]/" + std::to_string(T.Lookahead) + "--> ";
    Out += T.To == FinalState ? "FINAL" : "q" + std::to_string(T.To);
    Out += "\n";
  }
  return Out;
}
