//===- transducer/Determinism.h - Definition 3.7 ---------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism check of Definition 3.7. GENIC requires programs to be
/// deterministic because (unlike unambiguity) determinism is decidable, and
/// deterministic transducers are unambiguous; all the later decision
/// procedures are stated for unambiguous s-EFTs.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_TRANSDUCER_DETERMINISM_H
#define GENIC_TRANSDUCER_DETERMINISM_H

#include "ipc/Shards.h"
#include "solver/Solver.h"
#include "solver/SolverSessionPool.h"
#include "support/Result.h"
#include "transducer/Seft.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace genic {

/// Evidence that two rules of the same state overlap in a way Definition
/// 3.7 forbids.
struct DeterminismViolation {
  unsigned TransitionA;
  unsigned TransitionB;
  /// Symbols on which both rules fire (length = max of the two lookaheads).
  ValueList Symbols;
  std::string Reason;
};

/// Decides Definition 3.7; returns a violation if the transducer is
/// nondeterministic, std::nullopt if deterministic.
Result<std::optional<DeterminismViolation>> checkDeterminism(const Seft &A,
                                                             Solver &S);

/// Parallelism knobs for the per-pair overlap scan.
struct DeterminismOptions {
  /// Worker threads for the pairwise queries; 1 runs the same partitioned
  /// code path inline.
  unsigned Jobs = 1;
  /// Warm worker sessions to lease; a private pool is created when null.
  SolverSessionPool *Sessions = nullptr;
  /// When set, pair chunks are shipped to out-of-process workers instead
  /// of thread-local sessions; a failed shard (worker crashed twice)
  /// degrades the whole check to SolverError. Merge semantics — global
  /// minimum event, serial shared-session recheck — are unchanged, so the
  /// verdict stays byte-identical to the in-process scan.
  ShardDispatcher *Workers = nullptr;
};

/// The canonical suspicious-pair list of Definition 3.7: all transition
/// index pairs (I < J) sharing a source state, in lexicographic order.
/// Coordinator and workers derive identical lists from the same lowered
/// program, so shard boundaries are plain indices into it.
std::vector<std::pair<unsigned, unsigned>> determinismPairList(const Seft &A);

/// Scans \p Pairs[Begin..End) against a leased session; returns the first
/// index whose pair query violated Definition 3.7 or failed, or SIZE_MAX.
/// This is the exact chunk body the parallel checkDeterminism runs — the
/// worker binary calls it so shard verdicts match thread verdicts.
size_t scanDeterminismShard(
    const Seft &A, const std::vector<std::pair<unsigned, unsigned>> &Pairs,
    SolverSessionPool &Pool, size_t Begin, size_t End);

/// As above with the same-state rule pairs fanned out over \p Opts.Jobs
/// workers. Workers classify pairs in private sessions (verdicts are
/// semantic, hence scheduling-independent); the lexicographically first
/// violating pair is then re-checked in the shared session \p S, so the
/// reported violation — witness model included — is identical for every
/// Jobs value.
Result<std::optional<DeterminismViolation>>
checkDeterminism(const Seft &A, Solver &S, const DeterminismOptions &Opts);

} // namespace genic

#endif // GENIC_TRANSDUCER_DETERMINISM_H
