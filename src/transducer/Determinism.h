//===- transducer/Determinism.h - Definition 3.7 ---------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism check of Definition 3.7. GENIC requires programs to be
/// deterministic because (unlike unambiguity) determinism is decidable, and
/// deterministic transducers are unambiguous; all the later decision
/// procedures are stated for unambiguous s-EFTs.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_TRANSDUCER_DETERMINISM_H
#define GENIC_TRANSDUCER_DETERMINISM_H

#include "solver/Solver.h"
#include "solver/SolverSessionPool.h"
#include "support/Result.h"
#include "transducer/Seft.h"

#include <optional>
#include <string>

namespace genic {

/// Evidence that two rules of the same state overlap in a way Definition
/// 3.7 forbids.
struct DeterminismViolation {
  unsigned TransitionA;
  unsigned TransitionB;
  /// Symbols on which both rules fire (length = max of the two lookaheads).
  ValueList Symbols;
  std::string Reason;
};

/// Decides Definition 3.7; returns a violation if the transducer is
/// nondeterministic, std::nullopt if deterministic.
Result<std::optional<DeterminismViolation>> checkDeterminism(const Seft &A,
                                                             Solver &S);

/// Parallelism knobs for the per-pair overlap scan.
struct DeterminismOptions {
  /// Worker threads for the pairwise queries; 1 runs the same partitioned
  /// code path inline.
  unsigned Jobs = 1;
  /// Warm worker sessions to lease; a private pool is created when null.
  SolverSessionPool *Sessions = nullptr;
};

/// As above with the same-state rule pairs fanned out over \p Opts.Jobs
/// workers. Workers classify pairs in private sessions (verdicts are
/// semantic, hence scheduling-independent); the lexicographically first
/// violating pair is then re-checked in the shared session \p S, so the
/// reported violation — witness model included — is identical for every
/// Jobs value.
Result<std::optional<DeterminismViolation>>
checkDeterminism(const Seft &A, Solver &S, const DeterminismOptions &Opts);

} // namespace genic

#endif // GENIC_TRANSDUCER_DETERMINISM_H
