//===- transducer/Invert.h - §5: inverting s-EFTs --------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inversion algorithm of Theorem 5.4: the inverse of an injective
/// unambiguous s-EFT is obtained by inverting every rule independently
/// (Definition 5.2). For a rule (p, l, phi, f, q) the inverse rule is
/// (p, k, psi, g, q) where
///
///   - k = |f| (the inverse reads what the rule wrote),
///   - psi(y) == exists x . phi(x) /\ y = f(x), computed quantifier-free by
///     the solver (quantifier elimination, §6), and
///   - g recovers the inputs: forall x . phi(x) -> g(f(x)) = x, which is a
///     syntax-guided synthesis problem (§6). The synthesis engine is
///     injected through a hook so this module stays independent of the
///     concrete SyGuS implementation.
///
/// Per-rule wall-clock times are recorded: Table 1 reports both the total
/// inversion time and the maximum single-rule time (the paper's max-tr),
/// and observes that rules can be inverted in parallel.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_TRANSDUCER_INVERT_H
#define GENIC_TRANSDUCER_INVERT_H

#include "solver/Solver.h"
#include "support/Result.h"
#include "transducer/Seft.h"

#include <functional>
#include <optional>
#include <vector>

namespace genic {

/// Callback that synthesizes the recovery function g_i for one rule: a term
/// g over Var(0..P.arity()-1) (the outputs y) such that
///   forall x . P.Guard(x) -> g(P.Outputs(x)) = x_XIndex.
/// The paper observes (§6) that the g_i are independent, so they are
/// requested one at a time.
using RecoverySynthesizer =
    std::function<Result<TermRef>(const ImagePredicate &P, unsigned XIndex,
                                  Type InputType)>;

/// How the inversion of one rule ended. Timeout and SolverError are
/// degradations (the rule might well be invertible with more budget or a
/// healthy solver); NotInjective is a genuine negative — the rule has no
/// s-EFT inverse.
enum class RuleOutcome { Inverted, NotInjective, Timeout, SolverError };

const char *toString(RuleOutcome O);

/// Maps a per-rule failure status to its outcome class: budget statuses
/// (Timeout/Cancelled) degrade to Timeout, SolverError stays SolverError,
/// and everything else is a genuine NotInjective verdict.
RuleOutcome outcomeForStatus(const Status &St);

/// Timing and outcome per rule, feeding Table 1 and Figure 4.
struct RuleInversionRecord {
  unsigned Rule = 0;
  double Seconds = 0;
  bool Inverted = false;
  RuleOutcome Outcome = RuleOutcome::NotInjective;
  /// Escalated solver retries spent on this rule (stats delta).
  unsigned Retries = 0;
  std::string Error;
};

struct InversionOutcome {
  /// The inverse transducer. Present even on partial failure: rules that
  /// could not be inverted are simply missing (the paper's UTF-8 encoder
  /// row, where 3 of 4 rules inverted).
  Seft Inverse;
  std::vector<RuleInversionRecord> Records;

  /// Whether every rule was inverted.
  bool complete() const;
  /// Rules whose failure was a degradation (Timeout/SolverError), not a
  /// genuine non-injectivity verdict.
  unsigned degradedRules() const;
  /// Total and maximum per-rule times (Table 1's "total" and "max-tr").
  double totalSeconds() const;
  double maxRuleSeconds() const;
};

/// Inversion of a single rule: its record plus, when successful, the
/// inverse transition (absent for dead rules and failures).
struct RuleInversionResult {
  RuleInversionRecord Record;
  std::optional<SeftTransition> Transition;
};

/// Inverts one rule (Definition 5.2). \p Index is the rule's position in
/// its transducer (recorded for reporting); \p InputType and \p OutputType
/// are the owning transducer's alphabet types. All terms (input and output)
/// live in S.factory(). Rules are independent, so callers may run this for
/// different rules in different sessions concurrently — each session needs
/// its own TermFactory and Solver (neither is thread-safe); see
/// Inverter.cpp for the parallel driver.
RuleInversionResult invertOneRule(const SeftTransition &T, unsigned Index,
                                  const Type &InputType,
                                  const Type &OutputType, Solver &S,
                                  const RecoverySynthesizer &Synthesize);

/// Inverts \p A rule by rule in order. \p A must be injective
/// (checkInjectivity); the guard psi is computed in exact quantifier-free
/// form from the recoveries and the outputs with \p Synthesize. Per-rule
/// synthesis failures are recorded and skipped.
Result<InversionOutcome> invertSeft(const Seft &A, Solver &S,
                                    const RecoverySynthesizer &Synthesize);

} // namespace genic

#endif // GENIC_TRANSDUCER_INVERT_H
