//===- transducer/Injectivity.h - §4: checking s-EFT injectivity ----------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The injectivity decision procedure of Section 4. By Theorem 4.6 an
/// unambiguous s-EFT is injective iff it is transition-injective (every rule
/// maps distinct input tuples to distinct output tuples, Definition 4.2) and
/// path-injective (distinct accepting paths produce distinct outputs,
/// Definition 4.4). Transition-injectivity is one satisfiability query per
/// rule (Lemma 4.7); path-injectivity reduces to unambiguity of the output
/// automaton A_O (Lemma 4.10), which is decidable when A_O is Cartesian
/// (Lemma 4.14) — and undecidable in general (Theorem 4.8), so the check
/// reports an error outside the Cartesian fragment.
///
/// A negative answer comes with a concrete counterexample: two distinct
/// input lists that the transducer maps to the same output list, matching
/// GENIC's isInjective operation (§3.4).
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_TRANSDUCER_INJECTIVITY_H
#define GENIC_TRANSDUCER_INJECTIVITY_H

#include "automata/Sefa.h"
#include "ipc/Shards.h"
#include "solver/QueryCache.h"
#include "solver/Solver.h"
#include "solver/SolverSessionPool.h"
#include "support/Result.h"
#include "transducer/Seft.h"

#include <optional>
#include <string>

namespace genic {

/// Parallelism knobs for the injectivity pipeline. The same options value
/// drives all three phases (transition-injectivity, output-automaton
/// projections, ambiguity product search); Jobs = 1 runs the identical
/// partitioned code paths inline, so results are byte-identical for every
/// Jobs value.
struct InjectivityOptions {
  unsigned Jobs = 1;
  /// Warm worker sessions for the verdict-only parallel queries; a private
  /// pool is created (and shared across the CEGAR iterations) when null.
  /// Term-producing stages (projections) use fresh per-task forks of \p S's
  /// factory instead — see SolverContext.h for the determinism contract.
  SolverSessionPool *Sessions = nullptr;
  /// Shared (guard, guard) overlap verdicts for the ambiguity product
  /// search. checkInjectivity creates one per call when null and reuses it
  /// across the hull and exact CEGAR rounds, so the second round starts
  /// with every verdict the first round discharged.
  GuardOverlapCache *Overlaps = nullptr;
  /// When set, the verdict-only scans (transition-injectivity rules, the
  /// ambiguity product levels) ship their chunks to out-of-process workers;
  /// a shard the supervisor cannot complete degrades the phase to
  /// SolverError. Witness extraction and projections stay in-process — they
  /// produce terms, which never cross the process boundary.
  ShardDispatcher *Workers = nullptr;
};

/// The canonical scan order of Lemma 4.7: indices of the rules with a
/// non-zero lookahead. Coordinator and workers derive identical lists from
/// the same lowered program.
std::vector<unsigned> transitionInjectivityRules(const Seft &A);

/// Scans \p Rules[Begin..End) against a leased session; returns the first
/// index whose Lemma 4.7 query was sat or failed, or SIZE_MAX. The exact
/// chunk body of the parallel checkTransitionInjectivity, exported for the
/// worker binary.
size_t scanTransitionInjectivityShard(const Seft &A,
                                      const std::vector<unsigned> &Rules,
                                      SolverSessionPool &Pool, size_t Begin,
                                      size_t End);

/// A rule that conflates two input tuples (Definition 4.2 violated).
struct TransitionInjectivityViolation {
  unsigned Transition;
  /// Two distinct tuples of the rule's lookahead length with equal outputs.
  ValueList InputA;
  ValueList InputB;
};

/// Lemma 4.7: one satisfiability query per rule.
Result<std::optional<TransitionInjectivityViolation>>
checkTransitionInjectivity(const Seft &A, Solver &S);

/// As above with the per-rule queries fanned out over \p Opts.Jobs workers
/// in pooled sessions. The first violating rule (in index order) is
/// re-queried in the shared session for the witness model, so the result is
/// independent of scheduling.
Result<std::optional<TransitionInjectivityViolation>>
checkTransitionInjectivity(const Seft &A, Solver &S,
                           const InjectivityOptions &Opts);

/// Definition 4.9 with the epsilon-step collapsed: builds the output
/// automaton whose transition with id i carries the per-position
/// projections of rule i's image predicate. For Cartesian predicates
/// (Definition 4.12) the decomposition is exact; otherwise it
/// over-approximates, which checkInjectivity compensates for by validating
/// ambiguity witnesses against the real transducer.
Result<CartesianSefa> buildOutputAutomaton(const Seft &A, Solver &S);

/// As above, controlling whether wide bit-vector projections may use the
/// over-approximating [min, max] hull (sound for the ambiguity check, whose
/// witnesses are validated) instead of exact interval learning.
Result<CartesianSefa> buildOutputAutomaton(const Seft &A, Solver &S,
                                           bool AllowHull);

/// As above with the per-(rule, position) projections — the dominant cost
/// of the whole injectivity check on the coder corpus — fanned out over
/// \p Opts.Jobs workers. Each projection runs in a fresh private session
/// whose factory history is a pure function of that one rule (pooled
/// sessions must not export terms, see SolverSessionPool.h); results are
/// cloned back into \p S's factory in rule/position order, so the automaton
/// is structurally identical for every Jobs value.
Result<CartesianSefa> buildOutputAutomaton(const Seft &A, Solver &S,
                                           bool AllowHull,
                                           const InjectivityOptions &Opts);

/// Outcome of the injectivity check.
struct InjectivityResult {
  bool Injective = false;
  /// When not injective: two distinct input lists with the same output.
  /// Absent only if witness reconstruction was impossible (epsilon-cycle
  /// ambiguity); Detail then explains.
  std::optional<std::pair<ValueList, ValueList>> Witness;
  std::string Detail;
};

/// Theorem 4.6 / Theorem 4.16: the full injectivity check. \p A must be
/// unambiguous (use checkDeterminism first; GENIC does). Equivalent to the
/// options overload with Jobs = 1.
Result<InjectivityResult> checkInjectivity(const Seft &A, Solver &S);

/// The full check with every phase parallelized per \p Opts. Verdicts and
/// witnesses are byte-identical for every Jobs value: parallel stages
/// either return plain verdicts (re-checked serially in \p S for the
/// winner) or terms built in per-task sessions that are pure functions of
/// their inputs, and all merges happen in fixed index order.
Result<InjectivityResult> checkInjectivity(const Seft &A, Solver &S,
                                           const InjectivityOptions &Opts);

/// A shortest-ish input list prefix driving \p A from the initial state to
/// \p ViaState, and a suffix from \p ViaState to acceptance, built from
/// guard models. Used for witness construction and by tests.
struct InputContext {
  ValueList Prefix;
  ValueList Suffix;
};
Result<InputContext> sampleInputContext(const Seft &A, Solver &S,
                                        unsigned ViaState);

} // namespace genic

#endif // GENIC_TRANSDUCER_INJECTIVITY_H
