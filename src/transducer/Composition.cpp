//===- transducer/Composition.cpp ------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "transducer/Composition.h"

#include <functional>

using namespace genic;

namespace {

/// A path with its accumulated symbolic artifacts: the conjoined guard over
/// the concatenated input variables and the concatenated output terms.
struct SymbolicPath {
  TermRef Guard = nullptr;         // over Var(0 .. InputLen-1)
  std::vector<TermRef> Outputs;    // over the same variables
  unsigned InputLen = 0;
};

/// Shifts a rule's terms so its variables start at \p Offset.
TermRef shifted(TermFactory &F, TermRef T, unsigned Lookahead,
                unsigned Offset, const Type &InputType) {
  std::vector<TermRef> Repl(Lookahead);
  for (unsigned I = 0; I < Lookahead; ++I)
    Repl[I] = F.mkVar(Offset + I, InputType);
  return F.substitute(T, Repl);
}

/// Enumerates accepting paths of \p A with at most \p MaxRules rules whose
/// accumulated guard is satisfiable, building the symbolic artifacts.
Result<std::vector<SymbolicPath>> acceptingPaths(const Seft &A, Solver &S,
                                                 unsigned MaxRules) {
  TermFactory &F = S.factory();
  std::vector<SymbolicPath> Out;
  SymbolicPath Current;
  Current.Guard = F.mkTrue();
  Status Failure = Status::ok();

  std::function<void(unsigned, unsigned)> Go = [&](unsigned State,
                                                   unsigned RulesUsed) {
    if (!Failure.isOk())
      return;
    for (const SeftTransition &T : A.transitions()) {
      if (T.From != State)
        continue;
      SymbolicPath Saved = Current;
      TermRef RuleGuard =
          shifted(F, T.Guard, T.Lookahead, Current.InputLen, A.inputType());
      Current.Guard = F.mkAnd(Current.Guard, RuleGuard);
      for (TermRef O : T.Outputs)
        Current.Outputs.push_back(
            shifted(F, O, T.Lookahead, Current.InputLen, A.inputType()));
      Current.InputLen += T.Lookahead;
      Result<bool> Sat = S.isSat(Current.Guard);
      if (!Sat) {
        Failure = Sat.status();
        return;
      }
      if (*Sat) {
        if (T.To == Seft::FinalState)
          Out.push_back(Current);
        else if (RulesUsed + 1 < MaxRules)
          Go(T.To, RulesUsed + 1);
      }
      Current = Saved;
      if (!Failure.isOk())
        return;
    }
  };
  Go(A.initial(), 0);
  if (!Failure.isOk())
    return Failure;
  return Out;
}

/// Enumerates B-paths that consume exactly \p Len symbols, instantiated on
/// the terms \p Inputs (B's input variables replaced by them). Produces the
/// instantiated guard and output terms, both over A's input variables.
struct InstantiatedPath {
  TermRef Guard = nullptr;
  std::vector<TermRef> Outputs;
};

void consumingPaths(const Seft &B, TermFactory &F,
                    const std::vector<TermRef> &Inputs,
                    std::vector<InstantiatedPath> &Out) {
  InstantiatedPath Current;
  Current.Guard = F.mkTrue();
  std::function<void(unsigned, size_t)> Go = [&](unsigned State,
                                                 size_t Consumed) {
    for (const SeftTransition &T : B.transitions()) {
      if (T.From != State || Consumed + T.Lookahead > Inputs.size())
        continue;
      InstantiatedPath Saved = Current;
      // Substitute this rule's variables with the next Lookahead inputs,
      // requiring definedness of every substituted term (the inputs are
      // arbitrary terms, so aux-function domains matter).
      std::vector<TermRef> Repl(Inputs.begin() + Consumed,
                                Inputs.begin() + Consumed + T.Lookahead);
      TermRef SubGuard = F.substitute(T.Guard, Repl);
      Current.Guard = F.mkAnd(
          {Current.Guard, F.calleeDomains(SubGuard), SubGuard});
      for (TermRef O : T.Outputs) {
        TermRef Sub = F.substitute(O, Repl);
        Current.Guard = F.mkAnd(Current.Guard, F.calleeDomains(Sub));
        Current.Outputs.push_back(Sub);
      }
      if (T.To == Seft::FinalState) {
        if (Consumed + T.Lookahead == Inputs.size())
          Out.push_back(Current);
      } else if (T.Lookahead > 0) {
        Go(T.To, Consumed + T.Lookahead);
      }
      Current = Saved;
    }
  };
  Go(B.initial(), 0);
}

} // namespace

Result<std::optional<CompositionCounterexample>>
genic::verifyInverseBounded(const Seft &A, const Seft &B, Solver &S,
                            unsigned MaxRules) {
  TermFactory &F = S.factory();
  Result<std::vector<SymbolicPath>> Paths = acceptingPaths(A, S, MaxRules);
  if (!Paths)
    return Paths.status();

  for (const SymbolicPath &P : *Paths) {
    std::vector<Type> Types(P.InputLen, A.inputType());
    std::vector<InstantiatedPath> BPaths;
    consumingPaths(B, F, P.Outputs, BPaths);

    // Coverage: guard_p -> some B-path applies to f_p(x).
    std::vector<TermRef> AnyB;
    for (const InstantiatedPath &Q : BPaths)
      AnyB.push_back(Q.Guard);
    TermRef Uncovered = F.mkAnd(P.Guard, F.mkNot(F.mkOr(std::move(AnyB))));
    Result<bool> Sat = S.isSat(Uncovered);
    if (!Sat)
      return Sat.status();
    if (*Sat) {
      Result<std::vector<Value>> M = S.getModel(Uncovered, Types);
      if (!M)
        return M.status();
      return std::optional<CompositionCounterexample>(
          CompositionCounterexample{
              *M, "B rejects the image of this input"});
    }

    // Identity: along every applicable B-path, the outputs equal x.
    for (const InstantiatedPath &Q : BPaths) {
      TermRef Overlap = F.mkAnd(P.Guard, Q.Guard);
      TermRef Wrong;
      if (Q.Outputs.size() != P.InputLen) {
        Wrong = Overlap; // Any overlap already has the wrong length.
      } else {
        std::vector<TermRef> Mismatch;
        for (unsigned I = 0; I < P.InputLen; ++I)
          Mismatch.push_back(
              F.mkDistinct(Q.Outputs[I], F.mkVar(I, A.inputType())));
        Wrong = F.mkAnd(Overlap, F.mkOr(std::move(Mismatch)));
      }
      Result<bool> Bad = S.isSat(Wrong);
      if (!Bad)
        return Bad.status();
      if (*Bad) {
        Result<std::vector<Value>> M = S.getModel(Wrong, Types);
        if (!M)
          return M.status();
        return std::optional<CompositionCounterexample>(
            CompositionCounterexample{
                *M, Q.Outputs.size() != P.InputLen
                        ? "B maps the image to a list of the wrong length"
                        : "B maps the image back to a different list"});
      }
    }
  }
  return std::optional<CompositionCounterexample>(std::nullopt);
}
