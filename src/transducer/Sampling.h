//===- transducer/Sampling.h - Random accepted inputs ----------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized generation of inputs a transducer accepts, by walking its
/// rule graph and instantiating guards with solver models. Used by `genic
/// verify` (differential testing of claimed encoder/decoder pairs, the §1
/// user story) and by property tests; complements the oracle-driven
/// samplers of the corpus, which only exist for the built-in coders.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_TRANSDUCER_SAMPLING_H
#define GENIC_TRANSDUCER_SAMPLING_H

#include "solver/Solver.h"
#include "support/Result.h"
#include "transducer/Seft.h"

#include <random>

namespace genic {

/// Generates an input list that \p A accepts, by a random walk of about
/// \p TargetSteps rules: at each state a random applicable rule fires with
/// its guard instantiated by a solver model (randomly perturbed for
/// diversity where the guard allows), until a finalizer is taken. Errors
/// only if the walk reaches a state that cannot finish (the machine should
/// be trimmed/co-reachable, as lowered GENIC programs are) or on solver
/// failures.
Result<ValueList> randomAcceptedInput(const Seft &A, Solver &S,
                                      std::mt19937_64 &Rng,
                                      unsigned TargetSteps);

} // namespace genic

#endif // GENIC_TRANSDUCER_SAMPLING_H
