//===- transducer/Injectivity.cpp ------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "transducer/Injectivity.h"

#include "automata/Ambiguity.h"

#include "solver/SolverContext.h"
#include "support/Metrics.h"
#include "support/Result.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "term/TermClone.h"

#include <atomic>
#include <deque>
#include <memory>

using namespace genic;

namespace {

/// Guard of rule \p T with the second copy of the input variables shifted
/// by \p Delta: phi(x_Delta .. x_{Delta+l-1}).
TermRef shiftedGuard(TermFactory &F, const SeftTransition &T, unsigned Delta,
                     const Type &InputType) {
  std::vector<TermRef> Repl(T.Lookahead);
  for (unsigned I = 0; I < T.Lookahead; ++I)
    Repl[I] = F.mkVar(Delta + I, InputType);
  return F.substitute(T.Guard, Repl);
}

TermRef shiftedOutput(TermFactory &F, const SeftTransition &T, unsigned J,
                      unsigned Delta, const Type &InputType) {
  std::vector<TermRef> Repl(T.Lookahead);
  for (unsigned I = 0; I < T.Lookahead; ++I)
    Repl[I] = F.mkVar(Delta + I, InputType);
  return F.substitute(T.Outputs[J], Repl);
}

/// Lemma 4.7 formula for one rule:
///   x != x'  /\  phi(x) /\ phi(x')  /\  f(x) = f(x')
/// with x at Var(0..L-1) and x' at Var(L..2L-1).
TermRef transitionInjectivityQuery(TermFactory &F, const SeftTransition &T,
                                   const Type &InputType) {
  unsigned L = T.Lookahead;
  std::vector<TermRef> Distinct;
  for (unsigned I = 0; I < L; ++I)
    Distinct.push_back(
        F.mkDistinct(F.mkVar(I, InputType), F.mkVar(L + I, InputType)));
  std::vector<TermRef> Conjuncts{F.mkOr(std::move(Distinct)), T.Guard,
                                 shiftedGuard(F, T, L, InputType)};
  for (unsigned J = 0, K = T.Outputs.size(); J != K; ++J)
    Conjuncts.push_back(
        F.mkEq(T.Outputs[J], shiftedOutput(F, T, J, L, InputType)));
  return F.mkAnd(std::move(Conjuncts));
}

/// Builds the Lemma 4.7 query for rule \p Index in \p S and, when
/// satisfiable, extracts the conflicting input tuples.
Result<std::optional<TransitionInjectivityViolation>>
queryTransition(const Seft &A, Solver &S, unsigned Index) {
  const SeftTransition &T = A.transitions()[Index];
  unsigned L = T.Lookahead;
  TermRef Query = transitionInjectivityQuery(S.factory(), T, A.inputType());
  Result<bool> Sat = S.isSat(Query);
  if (!Sat)
    return Sat.status();
  if (!*Sat)
    return std::optional<TransitionInjectivityViolation>(std::nullopt);
  std::vector<Type> Types(2 * L, A.inputType());
  Result<std::vector<Value>> M = S.getModel(Query, Types);
  if (!M)
    return M.status();
  TransitionInjectivityViolation V;
  V.Transition = Index;
  V.InputA.assign(M->begin(), M->begin() + L);
  V.InputB.assign(M->begin() + L, M->begin() + 2 * L);
  return std::optional<TransitionInjectivityViolation>(V);
}

/// One chunk of the Lemma 4.7 scan: leases a session, primes the chunk's
/// query batch when incremental, and walks the rules until the first event
/// (sat or solver error). Null \p Cutoff (the out-of-process shard path)
/// only skips cross-chunk pruning; the returned first event is unchanged.
size_t scanRuleRange(const Seft &A, const std::vector<unsigned> &Rules,
                     size_t Begin, size_t End, SolverSessionPool &Pool,
                     std::atomic<size_t> *Cutoff) {
  const auto &Ts = A.transitions();
  MetricsPhaseScope WorkerPhase("ti");
  SolverSessionPool::Lease Sess = Pool.lease();
  // Coalesce the chunk's Lemma 4.7 queries into one selector-literal
  // batch; the scan below then answers from the session's sat memo.
  // Unknowns fall back to the individual isSat calls, so verdicts are
  // unchanged.
  if (Sess->Slv.control().Incremental && End - Begin > 1) {
    std::vector<TermRef> Queries;
    for (size_t K = Begin; K != End; ++K) {
      const SeftTransition &T = Ts[Rules[K]];
      SeftTransition Local;
      Local.From = T.From;
      Local.To = T.To;
      Local.Lookahead = T.Lookahead;
      Local.Guard = Sess->Import.clone(T.Guard);
      for (TermRef O : T.Outputs)
        Local.Outputs.push_back(Sess->Import.clone(O));
      Queries.push_back(
          transitionInjectivityQuery(Sess->Factory, Local, A.inputType()));
    }
    if (Queries.size() > 1)
      Sess->Slv.checkSatBatch(Queries);
  }
  for (size_t K = Begin; K != End; ++K) {
    if (Cutoff && K > Cutoff->load(std::memory_order_relaxed))
      continue;
    const SeftTransition &T = Ts[Rules[K]];
    SeftTransition Local;
    Local.From = T.From;
    Local.To = T.To;
    Local.Lookahead = T.Lookahead;
    Local.Guard = Sess->Import.clone(T.Guard);
    for (TermRef O : T.Outputs)
      Local.Outputs.push_back(Sess->Import.clone(O));
    TermRef Query =
        transitionInjectivityQuery(Sess->Factory, Local, A.inputType());
    Result<bool> Sat = Sess->Slv.isSat(Query);
    if (Sat && !*Sat)
      continue;
    if (Cutoff) {
      size_t Cur = Cutoff->load(std::memory_order_relaxed);
      while (K < Cur && !Cutoff->compare_exchange_weak(
                            Cur, K, std::memory_order_relaxed)) {
      }
    }
    return K;
  }
  return SIZE_MAX;
}

} // namespace

std::vector<unsigned> genic::transitionInjectivityRules(const Seft &A) {
  const auto &Ts = A.transitions();
  std::vector<unsigned> Rules;
  for (unsigned Index = 0, E = Ts.size(); Index != E; ++Index)
    if (Ts[Index].Lookahead != 0)
      Rules.push_back(Index);
  return Rules;
}

size_t genic::scanTransitionInjectivityShard(const Seft &A,
                                             const std::vector<unsigned> &Rules,
                                             SolverSessionPool &Pool,
                                             size_t Begin, size_t End) {
  return scanRuleRange(A, Rules, Begin, End, Pool, nullptr);
}

Result<std::optional<TransitionInjectivityViolation>>
genic::checkTransitionInjectivity(const Seft &A, Solver &S) {
  const auto &Ts = A.transitions();
  for (unsigned Index = 0, E = Ts.size(); Index != E; ++Index) {
    if (Ts[Index].Lookahead == 0)
      continue; // No inputs to conflate.
    Result<std::optional<TransitionInjectivityViolation>> R =
        queryTransition(A, S, Index);
    if (!R)
      return R;
    if (R->has_value())
      return R;
  }
  return std::optional<TransitionInjectivityViolation>(std::nullopt);
}

Result<std::optional<TransitionInjectivityViolation>>
genic::checkTransitionInjectivity(const Seft &A, Solver &S,
                                  const InjectivityOptions &Opts) {
  MetricsPhaseScope Phase("ti");
  TraceSpan ScanSpan("ti.scan");
  std::vector<unsigned> Rules = transitionInjectivityRules(A);
  if (Rules.empty())
    return std::optional<TransitionInjectivityViolation>(std::nullopt);
  if (S.cancellation().cancelled())
    return Status::cancelled(
        "transition-injectivity check: global deadline exhausted");

  SolverSessionPool LocalPool(S);
  SolverSessionPool &Pool = Opts.Sessions ? *Opts.Sessions : LocalPool;

  // Verdict-only scan in pooled sessions; the first rule with an event
  // (violation or error) is recomputed in the shared session, which also
  // produces the witness model — identical for every Jobs value.
  size_t Min = SIZE_MAX;
  if (Opts.Workers && Opts.Workers->procs() > 0) {
    // Out-of-process path: contiguous rule ranges go to the worker pool.
    // Only the global minimum event feeds the merge, so worker counts
    // cannot change the verdict; an uncompletable shard poisons the phase
    // to SolverError rather than under-scanning.
    size_t NumChunks =
        std::min(Rules.size(), size_t(Opts.Workers->procs()) * 4);
    std::vector<size_t> FirstEvent(NumChunks, SIZE_MAX);
    std::vector<Status> ShardErr(NumChunks, Status::ok());
    ScanSpan.arg("workers", static_cast<int64_t>(Opts.Workers->procs()));
    ThreadPool TP(std::min<size_t>(Opts.Workers->procs(), NumChunks),
                  "tiio");
    for (size_t C = 0; C != NumChunks; ++C) {
      size_t Begin = Rules.size() * C / NumChunks;
      size_t End = Rules.size() * (C + 1) / NumChunks;
      TP.submit([&, C, Begin, End] {
        Result<uint64_t> R =
            Opts.Workers->transitionInjectivityShard(Begin, End);
        if (!R)
          ShardErr[C] = R.status();
        else if (*R != ShardNoEvent)
          FirstEvent[C] = static_cast<size_t>(*R);
      });
    }
    TP.wait();
    for (const Status &E : ShardErr)
      if (!E)
        return Status::solverError("transition-injectivity shard failed: " +
                                   E.message());
    for (size_t E : FirstEvent)
      Min = std::min(Min, E);
  } else {
    size_t Threads = std::min<size_t>(std::max(1u, Opts.Jobs), Rules.size());
    size_t NumChunks = std::min(Rules.size(), Threads * 4);
    std::vector<size_t> FirstEvent(NumChunks, SIZE_MAX);
    std::atomic<size_t> Cutoff{SIZE_MAX};

    ThreadPool TP(Threads, "ti");
    for (size_t C = 0; C != NumChunks; ++C) {
      size_t Begin = Rules.size() * C / NumChunks;
      size_t End = Rules.size() * (C + 1) / NumChunks;
      TP.submit([&, C, Begin, End] {
        FirstEvent[C] = scanRuleRange(A, Rules, Begin, End, Pool, &Cutoff);
      });
    }
    TP.wait();
    for (size_t E : FirstEvent)
      Min = std::min(Min, E);
  }
  if (Min == SIZE_MAX)
    return std::optional<TransitionInjectivityViolation>(std::nullopt);
  // Serial recheck from the event onward (normally returns immediately;
  // continuing covers a shared/worker answer mismatch on flaky timeouts).
  for (size_t K = Min; K != Rules.size(); ++K) {
    Result<std::optional<TransitionInjectivityViolation>> R =
        queryTransition(A, S, Rules[K]);
    if (!R)
      return R;
    if (R->has_value())
      return R;
  }
  return std::optional<TransitionInjectivityViolation>(std::nullopt);
}

Result<CartesianSefa> genic::buildOutputAutomaton(const Seft &A, Solver &S) {
  return buildOutputAutomaton(A, S, /*AllowHull=*/true);
}

Result<CartesianSefa> genic::buildOutputAutomaton(const Seft &A, Solver &S,
                                                  bool AllowHull) {
  return buildOutputAutomaton(A, S, AllowHull, InjectivityOptions());
}

Result<CartesianSefa> genic::buildOutputAutomaton(
    const Seft &A, Solver &S, bool AllowHull, const InjectivityOptions &Opts) {
  MetricsPhaseScope Phase("cegar");
  TraceSpan ProjSpan("cegar.projections");
  ProjSpan.arg("hull", AllowHull);
  const auto &Ts = A.transitions();

  // One task per (rule, output position): the per-position projections are
  // independent and dominate isInj wall-clock (~0.8-1.4s each on the UTF-16
  // encoder), so this is the grain that parallelizes the pipeline. Each
  // task gets a fresh private fork of the shared factory — not a pooled
  // session — because its result is a term: every fork is created at the
  // same frozen parent state, so a fork's history is a pure function of its
  // rule and the projection's structure cannot depend on which tasks ran
  // before it on the same thread. Forking shares the rule's guard and
  // outputs by pointer, so task setup clones nothing.
  struct ProjTask {
    std::unique_ptr<SolverContext> Ctx;
    ImagePredicate P{nullptr, {}, 0};
    unsigned J = 0;
    Result<TermRef> Psi = Status::error("projection task did not run");
  };
  std::vector<ProjTask> Tasks;
  for (unsigned Index = 0, E = Ts.size(); Index != E; ++Index) {
    const SeftTransition &T = Ts[Index];
    for (unsigned J = 0, K = T.Outputs.size(); J != K; ++J) {
      ProjTask Task;
      Task.Ctx = std::make_unique<SolverContext>(S.factory(), S);
      Task.P.Guard = T.Guard;
      Task.P.Outputs.assign(T.Outputs.begin(), T.Outputs.end());
      Task.P.NumInputs = T.Lookahead;
      Task.J = J;
      Tasks.push_back(std::move(Task));
    }
  }

  ThreadPool TP(std::min<size_t>(std::max(1u, Opts.Jobs), Tasks.size()),
                "proj");
  bool Hull = AllowHull;
  {
    FreezeGuard Quiesce(S.factory());
    for (ProjTask &Task : Tasks) {
      ProjTask *T = &Task;
      TP.submit([T, Hull] {
        MetricsPhaseScope WorkerPhase("cegar");
        T->Psi = T->Ctx->solver().project(T->P, T->J, Hull);
      });
    }
    TP.wait();
  }

  // Merge in rule/position order: projections clone back into the shared
  // factory (structurally identical terms re-intern to identical TermRefs,
  // preserving the ambiguity check's guard dedup), and the empty-output
  // epsilon gates run on the shared solver exactly as in the serial order.
  CartesianSefa Out(A.numStates(), A.initial(), A.outputType());
  TermCloner Back(S.factory());
  size_t TaskIdx = 0;
  for (unsigned Index = 0, E = Ts.size(); Index != E; ++Index) {
    const SeftTransition &T = Ts[Index];
    SefaTransition NT;
    NT.From = T.From;
    NT.To = T.To == Seft::FinalState ? CartesianSefa::FinalState : T.To;
    NT.Id = Index;
    if (!T.Outputs.empty()) {
      // Per-position projections. When the rule's image predicate is
      // Cartesian (Definition 4.12) their conjunction is exact; otherwise
      // it over-approximates, which keeps the check sound for the
      // "injective" verdict (every true path stays accepting), and
      // ambiguity witnesses are validated against the real transducer
      // before being reported (checkInjectivity below). The expensive
      // Sigma_2 Cartesian query is thereby avoided on the happy path.
      for (unsigned J = 0, K = T.Outputs.size(); J != K; ++J) {
        ProjTask &Task = Tasks[TaskIdx++];
        if (Task.Psi) {
          NT.Guards.push_back(Back.clone(*Task.Psi));
          continue;
        }
        // The fork's projection failed (worker-scoped fault, flaky
        // timeout). Retry once in the shared session — a fresh attempt
        // with the full budget whose query history is jobs-independent —
        // so a transient worker failure doesn't abort the phase and the
        // outcome stays identical across --jobs values.
        Result<TermRef> Again = S.project(Task.P, Task.J, Hull);
        if (!Again)
          return Again.status();
        NT.Guards.push_back(*Again);
      }
    } else {
      // Empty output: an epsilon transition guarded by the satisfiability
      // of the rule's guard; trim() in the ambiguity check drops it when
      // the rule can never fire.
      Result<bool> Sat = S.isSat(T.Guard);
      if (!Sat)
        return Sat.status();
      if (!*Sat) {
        continue;
      }
    }
    Out.addTransition(std::move(NT));
  }
  return Out;
}

Result<InputContext> genic::sampleInputContext(const Seft &A, Solver &S,
                                               unsigned ViaState) {
  const auto &Ts = A.transitions();
  auto Extend = [&](const ValueList &Prefix,
                    const SeftTransition &T) -> Result<ValueList> {
    std::vector<Type> Types(T.Lookahead, A.inputType());
    Result<std::vector<Value>> M = S.getModel(T.Guard, Types);
    if (!M)
      return M.status();
    ValueList W = Prefix;
    W.insert(W.end(), M->begin(), M->end());
    return W;
  };

  std::vector<std::optional<ValueList>> Forward(A.numStates());
  Forward[A.initial()] = ValueList{};
  std::deque<unsigned> Work{A.initial()};
  while (!Work.empty()) {
    unsigned P = Work.front();
    Work.pop_front();
    for (const SeftTransition &T : Ts) {
      if (T.From != P || T.To == Seft::FinalState || Forward[T.To])
        continue;
      Result<bool> Sat = S.isSat(T.Guard);
      if (!Sat)
        return Sat.status();
      if (!*Sat)
        continue;
      Result<ValueList> W = Extend(*Forward[P], T);
      if (!W)
        return W.status();
      Forward[T.To] = *W;
      Work.push_back(T.To);
    }
  }
  if (!Forward[ViaState])
    return Status::error("sampleInputContext: state unreachable");

  std::vector<std::optional<ValueList>> Backward(A.numStates());
  for (const SeftTransition &T : Ts) {
    if (T.To != Seft::FinalState || Backward[T.From])
      continue;
    Result<bool> Sat = S.isSat(T.Guard);
    if (!Sat)
      return Sat.status();
    if (!*Sat)
      continue;
    Result<ValueList> W = Extend(ValueList{}, T);
    if (!W)
      return W.status();
    Backward[T.From] = *W;
    Work.push_back(T.From);
  }
  while (!Work.empty()) {
    unsigned Q = Work.front();
    Work.pop_front();
    for (const SeftTransition &T : Ts) {
      if (T.To != Q || Backward[T.From])
        continue;
      Result<bool> Sat = S.isSat(T.Guard);
      if (!Sat)
        return Sat.status();
      if (!*Sat)
        continue;
      Result<ValueList> Middle = Extend(ValueList{}, T);
      if (!Middle)
        return Middle.status();
      ValueList W = *Middle;
      W.insert(W.end(), Backward[Q]->begin(), Backward[Q]->end());
      Backward[T.From] = W;
      Work.push_back(T.From);
    }
  }
  if (!Backward[ViaState])
    return Status::error(
        "sampleInputContext: state cannot reach a finalizer");
  return InputContext{*Forward[ViaState], *Backward[ViaState]};
}

namespace {

/// Reconstructs an input list whose run follows \p Path (a sequence of rule
/// indices) and produces exactly \p OutputWord: for each rule, solves for an
/// input tuple matching the consumed output symbols.
Result<ValueList> inputForPath(const Seft &A, Solver &S,
                               const std::vector<unsigned> &Path,
                               const ValueList &OutputWord) {
  TermFactory &F = S.factory();
  ValueList Input;
  size_t Pos = 0;
  for (unsigned Id : Path) {
    const SeftTransition &T = A.transitions()[Id];
    if (Pos + T.Outputs.size() > OutputWord.size())
      return Status::error("inputForPath: path produces too many symbols");
    std::vector<TermRef> Conjuncts{T.Guard};
    for (size_t J = 0, K = T.Outputs.size(); J != K; ++J)
      Conjuncts.push_back(
          F.mkEq(T.Outputs[J], F.mkConst(OutputWord[Pos + J])));
    Pos += T.Outputs.size();
    if (T.Lookahead == 0)
      continue;
    std::vector<Type> Types(T.Lookahead, A.inputType());
    Result<std::vector<Value>> M =
        S.getModel(F.mkAnd(std::move(Conjuncts)), Types);
    if (!M)
      return M.status();
    Input.insert(Input.end(), M->begin(), M->end());
  }
  if (Pos != OutputWord.size())
    return Status::error("inputForPath: path produces too few symbols");
  return Input;
}

} // namespace

Result<InjectivityResult> genic::checkInjectivity(const Seft &A, Solver &S) {
  return checkInjectivity(A, S, InjectivityOptions());
}

Result<InjectivityResult>
genic::checkInjectivity(const Seft &A, Solver &S,
                        const InjectivityOptions &Opts) {
  // One warm session pool and one overlap cache serve every phase and both
  // CEGAR iterations: the exact round starts with every (guard, guard)
  // verdict the hull round already discharged.
  InjectivityOptions Eff = Opts;
  std::optional<SolverSessionPool> LocalPool;
  if (!Eff.Sessions) {
    LocalPool.emplace(S.factory(), S);
    Eff.Sessions = &*LocalPool;
  }
  std::optional<GuardOverlapCache> LocalOverlaps;
  if (!Eff.Overlaps) {
    LocalOverlaps.emplace();
    Eff.Overlaps = &*LocalOverlaps;
  }

  // Part 1: transition-injectivity (Lemma 4.7).
  Result<std::optional<TransitionInjectivityViolation>> TI =
      checkTransitionInjectivity(A, S, Eff);
  if (!TI)
    return TI.status();
  if (TI->has_value()) {
    const TransitionInjectivityViolation &V = **TI;
    const SeftTransition &T = A.transitions()[V.Transition];
    InjectivityResult R;
    R.Injective = false;
    R.Detail = "rule " + std::to_string(V.Transition) +
               " is not injective: inputs " + toString(V.InputA) + " and " +
               toString(V.InputB) + " produce the same output";
    // Embed the conflicting tuples into full input lists sharing a prefix
    // and suffix; both lists then transduce to the same output.
    Result<InputContext> Ctx = sampleInputContext(A, S, T.From);
    if (Ctx) {
      ValueList U1 = Ctx->Prefix, U2 = Ctx->Prefix;
      U1.insert(U1.end(), V.InputA.begin(), V.InputA.end());
      U2.insert(U2.end(), V.InputB.begin(), V.InputB.end());
      if (T.To != Seft::FinalState) {
        Result<InputContext> After = sampleInputContext(A, S, T.To);
        if (!After)
          return After.status();
        U1.insert(U1.end(), After->Suffix.begin(), After->Suffix.end());
        U2.insert(U2.end(), After->Suffix.begin(), After->Suffix.end());
      }
      R.Witness = {U1, U2};
    }
    return R;
  }

  // Part 2: path-injectivity via ambiguity of the output automaton
  // (Lemmas 4.10 and 4.14), CEGAR-style: first with cheap hull
  // projections, then — only if a witness fails to validate — with exact
  // interval-learned projections.
  for (bool AllowHull : {true, false}) {
    TraceSpan RoundSpan("cegar.round");
    RoundSpan.arg("hull", AllowHull);
    if (S.cancellation().cancelled())
      return Status::cancelled(
          "injectivity CEGAR loop: global deadline exhausted");
    Result<CartesianSefa> AO = buildOutputAutomaton(A, S, AllowHull, Eff);
    if (!AO)
      return AO.status();
    AmbiguityOptions AmbOpts;
    AmbOpts.Jobs = Eff.Jobs;
    AmbOpts.Sessions = Eff.Sessions;
    AmbOpts.Overlaps = Eff.Overlaps;
    AmbOpts.Workers = Eff.Workers;
    AmbOpts.Hull = AllowHull;
    Result<std::optional<AmbiguityWitness>> Amb =
        checkAmbiguity(*AO, S, AmbOpts);
    if (!Amb)
      return Amb.status();
    if (!Amb->has_value())
      return InjectivityResult{true, std::nullopt, ""};

    const AmbiguityWitness &W = **Amb;
    InjectivityResult R;
    R.Injective = false;
    R.Detail = "two accepting paths produce the output " + toString(W.Word);
    if (W.PathA.empty() && W.PathB.empty()) {
      R.Detail += " (epsilon-cycle ambiguity: unboundedly many paths)";
      return R;
    }
    Result<ValueList> U1 = inputForPath(A, S, W.PathA, W.Word);
    Result<ValueList> U2 = inputForPath(A, S, W.PathB, W.Word);
    if (U1 && U2) {
      R.Witness = {*U1, *U2};
      return R;
    }
    // Spurious witness: the hull over-approximation was too coarse.
    // Retry with exact projections; if those also produce an unrealizable
    // witness, some rule's image predicate is genuinely not Cartesian and
    // the instance falls outside the decidable fragment.
    if (!AllowHull)
      return Status::error(
          "ambiguity witness " + toString(W.Word) +
          " could not be realized by concrete inputs; some rule's output "
          "predicate is not Cartesian, so injectivity is undecidable here "
          "(Theorems 4.8/4.16)");
  }
  unreachable("CEGAR loop must return");
}
