//===- solver/QueryWatch.h - Active-query registry and watchdog -----------===//
//
// Part of the genic project, a C++ reproduction of "Automatic Program
// Inversion using Symbolic Transducers" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of in-flight solver queries and the slow-query
/// watchdog that scans it. Every metered `Impl::check` registers its start
/// timestamp, phase tag, session kind, and request epoch in a per-thread
/// slot (lock-free stores; slot creation takes a mutex once per thread).
/// A background watchdog thread — started by genicd when `--slow-query-ms`
/// is set — scans the slots and fires a SlowQueryEvent the moment a query
/// has been running past the threshold, so a wedged Z3 call is visible
/// *while* it is stuck, not only after the deadline unwinds it. Completed
/// queries that ran past the threshold (or surfaced a timeout-Unknown,
/// which by definition exhausted their soft budget) are reported by the
/// chokepoint itself via noteCompletion, which also bumps the
/// `solver.slowquery.*` counters in the request's registry.
///
/// Disarmed (threshold 0, the default) the whole feature is one relaxed
/// atomic load on the query path — byte-identity and the perf defaults are
/// untouched. Events additionally land as trace instants
/// ("solver.slowquery") so slow queries show up in Perfetto.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_SOLVER_QUERYWATCH_H
#define GENIC_SOLVER_QUERYWATCH_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace genic {

class MetricsRegistry;

/// One slow-query occurrence, delivered to the installed sink (genicd
/// writes it to the access log as an `"event":"slowquery"` line).
struct SlowQueryEvent {
  uint64_t ElapsedUs = 0;   ///< Query runtime so far (in-flight) or total.
  uint64_t ThresholdMs = 0; ///< The armed threshold that was exceeded.
  const char *Phase = "other"; ///< Metrics phase tag at query start.
  const char *Kind = "shared"; ///< Solver session kind.
  uint64_t RequestId = 0;   ///< Trace request epoch (0 outside a request).
  bool InFlight = false;    ///< Caught mid-query by the watchdog thread.
  bool TimedOut = false;    ///< The query surfaced a timeout-Unknown.
};

/// Process-wide singleton owning the per-thread active-query slots, the
/// armed threshold, the event sink, and the optional watchdog thread.
class QueryWatch {
public:
  static QueryWatch &global();

  /// Arms the watch at \p ThresholdMs (0 disarms). Does not start the
  /// watchdog thread — completion-side accounting works without it.
  void arm(uint64_t ThresholdMs);
  uint64_t thresholdMs() const;
  bool enabled() const { return thresholdMs() != 0; }

  /// Installs the sink invoked for every slow-query event (watchdog thread
  /// or completing query thread). Pass an empty function to clear.
  void setSink(std::function<void(const SlowQueryEvent &)> Sink);

  /// Starts the background scanner (idempotent). \p PeriodMs bounds the
  /// detection latency for stuck queries.
  void startWatchdog(uint64_t PeriodMs);
  /// Stops and joins the scanner (idempotent; safe if never started).
  void stopWatchdog();

  /// Point-in-time view of currently running solver queries (for statusz).
  struct ActiveQuery {
    uint64_t ElapsedUs = 0;
    const char *Phase = "other";
    const char *Kind = "shared";
    uint64_t RequestId = 0;
  };
  std::vector<ActiveQuery> activeQueries() const;

  /// Lifetime count of slow-query events (both detection paths).
  uint64_t slowQueryCount() const;

  /// Registers the calling thread's query in its slot for the scope's
  /// lifetime. Constructed only when the watch is armed.
  class Scope {
  public:
    Scope(const char *Kind);
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;
  };

  /// Completion-side hook from the chokepoint: if the finished query ran
  /// past the threshold or surfaced a timeout-Unknown, records
  /// `solver.slowquery.*` into \p Metrics (when non-null), emits the trace
  /// instant, and invokes the sink. No-op when disarmed.
  void noteCompletion(uint64_t ElapsedUs, bool TimedOut, const char *Phase,
                      const char *Kind, MetricsRegistry *Metrics);

private:
  QueryWatch() = default;
  struct State;
  State &state() const;
};

} // namespace genic

#endif // GENIC_SOLVER_QUERYWATCH_H
