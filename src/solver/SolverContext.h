//===- solver/SolverContext.h - Copy-on-write term/solver sessions --------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The session layer: one SolverContext bundles the TermFactory + Solver +
/// import TermCloner triple that every part of the pipeline used to wire up
/// by hand. A root context owns a fresh factory; a *fork* shares its
/// parent's interned prefix copy-on-write (see TermFactory's class comment),
/// so spinning up a worker session is O(1) — the component library, aux
/// definitions, and every already-interned guard are reachable by pointer
/// instead of being re-cloned per rule.
///
/// Freeze/fork contract:
///  - Fork while the parent is quiescent, use the fork, then merge results
///    serially. The parent must not intern anything while forks run on
///    other threads; FreezeGuard asserts that in debug builds.
///  - A fork's term identity is a pure function of (frozen prefix, the
///    fork's own operation sequence). Forks created at the same parent
///    state therefore build byte-identical terms regardless of scheduling,
///    which is what keeps --jobs N output equal to --jobs 1.
///  - Terms of the frozen prefix may be exported from a fork as-is; terms
///    the fork interned itself must be cloned back into the parent on the
///    serial merge (TermCloner's prefix passthrough makes that cheap).
///  - Pooled (reused) forks inherit SolverSessionPool's data-only export
///    contract: their post-prefix history is scheduling-dependent, so they
///    export verdicts/values/indices only, never terms.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_SOLVER_SOLVERCONTEXT_H
#define GENIC_SOLVER_SOLVERCONTEXT_H

#include "solver/Solver.h"
#include "term/TermClone.h"
#include "term/TermFactory.h"

namespace genic {

/// RAII quiescence guard: freezes a factory for the duration of a parallel
/// fan-out over its forks. Debug-build assertion only (see
/// TermFactory::freeze); zero-cost in release.
class FreezeGuard {
public:
  explicit FreezeGuard(const TermFactory &F) : F(&F) { F.freeze(); }
  FreezeGuard(FreezeGuard &&O) noexcept : F(O.F) { O.F = nullptr; }
  FreezeGuard(const FreezeGuard &) = delete;
  FreezeGuard &operator=(const FreezeGuard &) = delete;
  FreezeGuard &operator=(FreezeGuard &&) = delete;
  ~FreezeGuard() {
    if (F)
      F->thaw();
  }

private:
  const TermFactory *F;
};

/// A term/solver session. Not thread-safe; one per thread of work. See the
/// file comment for the freeze/fork contract.
class SolverContext {
public:
  /// Root context: fresh factory, fresh solver.
  explicit SolverContext(unsigned TimeoutMs = 20000);

  /// Worker fork sharing \p FrozenPrefix copy-on-write. The prefix factory
  /// must outlive this context and stay quiescent while the fork is used
  /// from another thread.
  SolverContext(const TermFactory &FrozenPrefix, unsigned TimeoutMs);

  /// Worker fork sharing \p FrozenPrefix that also inherits \p Inherit's
  /// timeout and robustness control (cancellation token, fault plan),
  /// marked as a worker session for fault-plan scoping. The standard way
  /// to spin up a fork under a session with a global deadline.
  SolverContext(const TermFactory &FrozenPrefix, const Solver &Inherit);

  /// Fork of a parent context; shares its factory's interned prefix and
  /// inherits its solver timeout and robustness control.
  explicit SolverContext(const SolverContext &Parent);

  SolverContext &operator=(const SolverContext &) = delete;

  TermFactory &factory() { return F; }
  const TermFactory &factory() const { return F; }
  Solver &solver() { return Slv; }
  /// Memoized cloner INTO this context. For forks, cloning a prefix term is
  /// the identity; only alien terms (from sibling forks or unrelated
  /// factories) cost anything.
  TermCloner &importer() { return Import; }

  /// True for forks (the factory has a frozen prefix).
  bool isFork() const { return Forked; }

private:
  TermFactory F;
  Solver Slv;
  TermCloner Import;
  bool Forked;
};

} // namespace genic

#endif // GENIC_SOLVER_SOLVERCONTEXT_H
