//===- solver/SolverContext.cpp --------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "solver/SolverContext.h"

#include "support/Trace.h"

using namespace genic;

SolverContext::SolverContext(unsigned TimeoutMs)
    : F(), Slv(F), Import(F), Forked(false) {
  Slv.setTimeoutMs(TimeoutMs);
}

SolverContext::SolverContext(const TermFactory &FrozenPrefix,
                             unsigned TimeoutMs)
    : F(FrozenPrefix), Slv(F), Import(F), Forked(true) {
  Slv.setTimeoutMs(TimeoutMs);
}

SolverContext::SolverContext(const TermFactory &FrozenPrefix,
                             const Solver &Inherit)
    : F(FrozenPrefix), Slv(F), Import(F), Forked(true) {
  Slv.setTimeoutMs(Inherit.timeoutMs());
  SolverControl C = Inherit.control();
  C.WorkerSession = true;
  C.Kind = SolverSessionKind::Worker;
  Slv.setControl(C);
  TraceRecorder::global().instant("session.fork", "session");
}

SolverContext::SolverContext(const SolverContext &Parent)
    : F(Parent.F), Slv(F), Import(F), Forked(true) {
  Slv.setTimeoutMs(Parent.Slv.timeoutMs());
  SolverControl C = Parent.Slv.control();
  C.WorkerSession = true;
  C.Kind = SolverSessionKind::Worker;
  Slv.setControl(C);
  TraceRecorder::global().instant("session.fork", "session");
}
