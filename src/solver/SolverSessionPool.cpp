//===- solver/SolverSessionPool.cpp ----------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "solver/SolverSessionPool.h"

#include "support/Trace.h"

using namespace genic;

SolverSessionPool::Lease SolverSessionPool::lease() {
  std::lock_guard<std::mutex> Lock(M);
  ++TheStats.Leases;
  if (!Free.empty()) {
    Session *S = Free.back();
    Free.pop_back();
    TraceRecorder::global().instant("pool.lease", "session", "reused", 1);
    return Lease(this, S);
  }
  ++TheStats.Created;
  TraceRecorder::global().instant("pool.lease", "session", "reused", 0);
  All.push_back(Prefix ? std::make_unique<Session>(*Prefix, TimeoutMs)
                       : std::make_unique<Session>(TimeoutMs));
  All.back()->Slv.setControl(Ctl);
  return Lease(this, All.back().get());
}

void SolverSessionPool::rearm(const Solver &Like) {
  std::lock_guard<std::mutex> Lock(M);
  TimeoutMs = Like.timeoutMs();
  Ctl = Like.control();
  Ctl.WorkerSession = true;
  Ctl.Kind = SolverSessionKind::Pooled;
  for (auto &S : All) {
    S->Slv.setTimeoutMs(TimeoutMs);
    S->Slv.setControl(Ctl);
  }
}

void SolverSessionPool::release(Session *S) {
  std::lock_guard<std::mutex> Lock(M);
  Free.push_back(S);
}

size_t SolverSessionPool::outstandingLeases() const {
  std::lock_guard<std::mutex> Lock(M);
  return All.size() - Free.size();
}

SolverSessionPool::Stats SolverSessionPool::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return TheStats;
}

unsigned SolverSessionPool::sessions() const {
  std::lock_guard<std::mutex> Lock(M);
  return static_cast<unsigned>(All.size());
}

Solver::Stats SolverSessionPool::solverStats() const {
  std::lock_guard<std::mutex> Lock(M);
  Solver::Stats Sum;
  for (const auto &S : All)
    Sum += S->Slv.stats();
  return Sum;
}
