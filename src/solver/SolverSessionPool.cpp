//===- solver/SolverSessionPool.cpp ----------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "solver/SolverSessionPool.h"

using namespace genic;

SolverSessionPool::Lease SolverSessionPool::lease() {
  std::lock_guard<std::mutex> Lock(M);
  ++TheStats.Leases;
  if (!Free.empty()) {
    Session *S = Free.back();
    Free.pop_back();
    return Lease(this, S);
  }
  ++TheStats.Created;
  All.push_back(Prefix ? std::make_unique<Session>(*Prefix, TimeoutMs)
                       : std::make_unique<Session>(TimeoutMs));
  return Lease(this, All.back().get());
}

void SolverSessionPool::release(Session *S) {
  std::lock_guard<std::mutex> Lock(M);
  Free.push_back(S);
}

SolverSessionPool::Stats SolverSessionPool::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return TheStats;
}

unsigned SolverSessionPool::sessions() const {
  std::lock_guard<std::mutex> Lock(M);
  return static_cast<unsigned>(All.size());
}

Solver::Stats SolverSessionPool::solverStats() const {
  std::lock_guard<std::mutex> Lock(M);
  Solver::Stats Sum;
  for (const auto &S : All) {
    const Solver::Stats &W = S->Slv.stats();
    Sum.SatQueries += W.SatQueries;
    Sum.QeCalls += W.QeCalls;
    Sum.QeFallbacks += W.QeFallbacks;
    Sum.CacheHits += W.CacheHits;
    Sum.CacheMisses += W.CacheMisses;
    Sum.CacheEvictions += W.CacheEvictions;
    Sum.ModelCacheHits += W.ModelCacheHits;
    Sum.ModelCacheMisses += W.ModelCacheMisses;
    Sum.ModelCacheEvictions += W.ModelCacheEvictions;
    Sum.ProjCacheHits += W.ProjCacheHits;
    Sum.ProjCacheMisses += W.ProjCacheMisses;
    Sum.ProjCacheEvictions += W.ProjCacheEvictions;
  }
  return Sum;
}
