//===- solver/QueryWatch.cpp - Active-query registry and watchdog ---------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "solver/QueryWatch.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

namespace genic {

namespace {

uint64_t nowNs() {
  uint64_t Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count();
  // 0 means "idle" in a slot; never hand it out as a start stamp.
  return Ns | 1;
}

/// One thread's active-query slot. Writes on the query path are relaxed
/// stores; StartNs doubles as the occupancy flag (0 = no query running).
struct Slot {
  std::atomic<uint64_t> StartNs{0};
  std::atomic<const char *> Phase{"other"};
  std::atomic<const char *> Kind{"shared"};
  std::atomic<uint64_t> RequestId{0};
  std::atomic<uint64_t> Seq{0};
  std::atomic<uint64_t> FlaggedSeq{0};
};

} // namespace

struct QueryWatch::State {
  std::atomic<uint64_t> ThresholdMs{0};
  std::atomic<uint64_t> SlowCount{0};

  std::mutex SlotsMu;
  std::vector<std::shared_ptr<Slot>> Slots;

  std::mutex SinkMu;
  std::function<void(const SlowQueryEvent &)> Sink;

  std::mutex WdMu;
  std::condition_variable WdCv;
  std::thread Watchdog;
  bool WdStop = false;
  uint64_t PeriodMs = 100;

  Slot &localSlot() {
    // The shared_ptr keeps the slot alive past thread exit; the registry
    // keeps a reference too, so the watchdog never races a destructor.
    thread_local std::shared_ptr<Slot> Mine = [this] {
      auto S = std::make_shared<Slot>();
      std::lock_guard<std::mutex> Lock(SlotsMu);
      Slots.push_back(S);
      return S;
    }();
    return *Mine;
  }

  void fire(const SlowQueryEvent &E) {
    SlowCount.fetch_add(1, std::memory_order_relaxed);
    TraceRecorder::global().instant("solver.slowquery", "solver", "us",
                                    int64_t(E.ElapsedUs), "threshold_ms",
                                    int64_t(E.ThresholdMs));
    std::function<void(const SlowQueryEvent &)> S;
    {
      std::lock_guard<std::mutex> Lock(SinkMu);
      S = Sink;
    }
    if (S)
      S(E);
  }

  void scanOnce(uint64_t Thr) {
    std::vector<std::shared_ptr<Slot>> Snapshot;
    {
      std::lock_guard<std::mutex> Lock(SlotsMu);
      Snapshot = Slots;
    }
    uint64_t Now = nowNs();
    for (const auto &S : Snapshot) {
      uint64_t Start = S->StartNs.load(std::memory_order_acquire);
      if (!Start || Now <= Start)
        continue;
      uint64_t ElapsedUs = (Now - Start) / 1000;
      if (ElapsedUs < Thr * 1000)
        continue;
      uint64_t Seq = S->Seq.load(std::memory_order_relaxed);
      if (S->FlaggedSeq.load(std::memory_order_relaxed) == Seq)
        continue; // already reported this occurrence
      S->FlaggedSeq.store(Seq, std::memory_order_relaxed);
      SlowQueryEvent E;
      E.ElapsedUs = ElapsedUs;
      E.ThresholdMs = Thr;
      E.Phase = S->Phase.load(std::memory_order_relaxed);
      E.Kind = S->Kind.load(std::memory_order_relaxed);
      E.RequestId = S->RequestId.load(std::memory_order_relaxed);
      E.InFlight = true;
      fire(E);
    }
  }

  void watchdogLoop() {
    std::unique_lock<std::mutex> Lock(WdMu);
    while (!WdStop) {
      uint64_t Period = PeriodMs;
      WdCv.wait_for(Lock, std::chrono::milliseconds(Period),
                    [this] { return WdStop; });
      if (WdStop)
        break;
      uint64_t Thr = ThresholdMs.load(std::memory_order_relaxed);
      if (!Thr)
        continue;
      Lock.unlock();
      scanOnce(Thr);
      Lock.lock();
    }
  }
};

QueryWatch &QueryWatch::global() {
  static QueryWatch W;
  return W;
}

QueryWatch::State &QueryWatch::state() const {
  // Deliberately leaked: per-thread slots and the watchdog may outlive any
  // static destruction order.
  static State *S = new State;
  return *S;
}

void QueryWatch::arm(uint64_t ThresholdMs) {
  state().ThresholdMs.store(ThresholdMs, std::memory_order_relaxed);
}

uint64_t QueryWatch::thresholdMs() const {
  return state().ThresholdMs.load(std::memory_order_relaxed);
}

void QueryWatch::setSink(std::function<void(const SlowQueryEvent &)> Sink) {
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.SinkMu);
  S.Sink = std::move(Sink);
}

void QueryWatch::startWatchdog(uint64_t PeriodMs) {
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.WdMu);
  if (S.Watchdog.joinable())
    return;
  S.WdStop = false;
  S.PeriodMs = PeriodMs ? PeriodMs : 100;
  S.Watchdog = std::thread([&S] { S.watchdogLoop(); });
}

void QueryWatch::stopWatchdog() {
  State &S = state();
  std::thread T;
  {
    std::lock_guard<std::mutex> Lock(S.WdMu);
    if (!S.Watchdog.joinable())
      return;
    S.WdStop = true;
    T = std::move(S.Watchdog);
  }
  S.WdCv.notify_all();
  T.join();
}

std::vector<QueryWatch::ActiveQuery> QueryWatch::activeQueries() const {
  State &S = state();
  std::vector<std::shared_ptr<Slot>> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(S.SlotsMu);
    Snapshot = S.Slots;
  }
  uint64_t Now = nowNs();
  std::vector<ActiveQuery> Out;
  for (const auto &Sl : Snapshot) {
    uint64_t Start = Sl->StartNs.load(std::memory_order_acquire);
    if (!Start)
      continue;
    ActiveQuery Q;
    Q.ElapsedUs = Now > Start ? (Now - Start) / 1000 : 0;
    Q.Phase = Sl->Phase.load(std::memory_order_relaxed);
    Q.Kind = Sl->Kind.load(std::memory_order_relaxed);
    Q.RequestId = Sl->RequestId.load(std::memory_order_relaxed);
    Out.push_back(Q);
  }
  return Out;
}

uint64_t QueryWatch::slowQueryCount() const {
  return state().SlowCount.load(std::memory_order_relaxed);
}

QueryWatch::Scope::Scope(const char *Kind) {
  Slot &S = QueryWatch::global().state().localSlot();
  S.Phase.store(currentMetricsPhase(), std::memory_order_relaxed);
  S.Kind.store(Kind, std::memory_order_relaxed);
  S.RequestId.store(currentTraceRequest(), std::memory_order_relaxed);
  S.Seq.fetch_add(1, std::memory_order_relaxed);
  S.StartNs.store(nowNs(), std::memory_order_release);
}

QueryWatch::Scope::~Scope() {
  QueryWatch::global().state().localSlot().StartNs.store(
      0, std::memory_order_release);
}

void QueryWatch::noteCompletion(uint64_t ElapsedUs, bool TimedOut,
                                const char *Phase, const char *Kind,
                                MetricsRegistry *Metrics) {
  uint64_t Thr = thresholdMs();
  if (!Thr)
    return;
  // A timeout-Unknown exhausted its soft budget by definition, so it counts
  // as slow even when the injected-fault path returned instantly — that is
  // what makes the chaos-stage assertion deterministic.
  if (!TimedOut && ElapsedUs < Thr * 1000)
    return;
  if (Metrics) {
    Metrics->counter("solver.slowquery.count").add(1);
    if (TimedOut)
      Metrics->counter("solver.slowquery.timeouts").add(1);
    Metrics->histogram("solver.slowquery.us").observe(ElapsedUs);
  }
  SlowQueryEvent E;
  E.ElapsedUs = ElapsedUs;
  E.ThresholdMs = Thr;
  E.Phase = Phase;
  E.Kind = Kind;
  E.RequestId = currentTraceRequest();
  E.InFlight = false;
  E.TimedOut = TimedOut;
  state().fire(E);
}

} // namespace genic
