//===- solver/Solver.h - Decision procedures over the alphabet theory -----===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision-procedure layer: satisfiability, validity, models,
/// equivalence-modulo-guard, quantifier elimination, and the image-predicate
/// operations (projection, Cartesian check) of §4.3 and §5-6.
///
/// The implementation delegates base SMT queries to Z3 — the same solver the
/// original GENIC used — through a pimpl so that Z3 types never appear in
/// public headers. All terms passed in must be quantifier-free; auxiliary
/// function calls are inlined on translation. Callers must conjoin domain
/// predicates of partial auxiliary functions themselves where partiality
/// matters (see TermFactory::calleeDomains).
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_SOLVER_SOLVER_H
#define GENIC_SOLVER_SOLVER_H

#include "solver/FaultInjector.h"
#include "solver/ImagePredicate.h"
#include "support/Deadline.h"
#include "support/Result.h"
#include "term/TermFactory.h"

#include <memory>
#include <vector>

namespace genic {

class MetricsRegistry;

/// Outcome of a satisfiability query.
enum class SatResult { Sat, Unsat, Unknown };

/// How a session relates to the pipeline's session architecture; used to
/// tag the solver-query latency histograms
/// ("solver.query.us.<phase>.<kind>").
enum class SolverSessionKind { Shared, Pooled, Worker };

/// Histogram-tag spelling of \p Kind ("shared" / "pooled" / "worker").
const char *toString(SolverSessionKind Kind);

/// The robustness contract a session operates under. Propagated by value
/// when sessions fork (SolverContext copy/fork ctors, SolverSessionPool), so
/// every worker session observes the same cancellation token and fault plan
/// as the session it was derived from.
struct SolverControl {
  /// Global-budget token: once cancelled, every query is refused up front
  /// (reported as Unknown with a Cancelled cause) without touching Z3.
  CancellationToken Cancel;
  /// Deterministic synthetic-fault schedule for tests; empty in production.
  FaultPlan Faults;
  /// Whether this session is a pooled/forked worker (drives FaultPlan
  /// scoping). Set automatically by the fork/pool plumbing.
  bool WorkerSession = false;
  /// Escalating retry policy: a query that comes back Unknown from a
  /// timeout is retried once with a larger soft timeout (still clamped to
  /// the remaining global budget) before the Unknown is surfaced.
  bool RetryUnknown = true;
  /// Multiplier applied to the soft timeout on the retry.
  unsigned RetryTimeoutFactor = 2;
  /// When set, every query's wall-clock latency is observed into the
  /// registry's "solver.query.us.<phase>.<kind>" histogram at the single
  /// check() chokepoint. Shared across sessions; the registry is
  /// thread-safe. Null disables recording entirely.
  MetricsRegistry *Metrics = nullptr;
  /// The session-kind tag for this session's queries. The pool and fork
  /// plumbing overwrite it (Pooled / Worker) where they set WorkerSession.
  SolverSessionKind Kind = SolverSessionKind::Shared;
  /// Master switch for incremental solving (scoped backend sessions,
  /// assumption-literal checks, coalesced batches). When false every scoped
  /// or batched entry point degrades to the one-shot path: identical
  /// verdicts, re-sent assertion stacks. Propagated to forked and pooled
  /// sessions with the rest of the control, so one flag flips the whole
  /// pipeline (--solver-incremental).
  bool Incremental = true;
};

/// A session with the underlying SMT solver. Not thread-safe.
class Solver {
public:
  /// Creates a solver whose answers are terms built in \p Factory.
  explicit Solver(TermFactory &Factory);
  ~Solver();
  Solver(const Solver &) = delete;
  Solver &operator=(const Solver &) = delete;

  /// Per-query timeout; 0 disables. Defaults to 20 seconds. The effective
  /// soft timeout handed to Z3 is additionally clamped to the remaining
  /// global budget of the control token's deadline.
  void setTimeoutMs(unsigned Milliseconds);
  unsigned timeoutMs() const;

  /// Installs the robustness contract (cancellation, fault plan, retry
  /// policy) this session runs under. Defaults to an inert control: no
  /// deadline, no faults, retry enabled.
  void setControl(const SolverControl &Control);
  const SolverControl &control() const;

  /// The cancellation token of the installed control. Pipeline loops poll
  /// this between work items for prompt, clean exits (queries themselves
  /// are refused once the token is cancelled regardless).
  const CancellationToken &cancellation() const;

  /// Caps the solver memo tables (checkSat default 1M entries; the model
  /// and projection memos follow at min(cap, 64K) since their values are
  /// heavier). When an insertion would exceed a cap the whole table is
  /// dropped — a generation clear, chosen over LRU because the memo keys
  /// are hash-consed pointers and the hit distribution is bursty (a phase
  /// re-queries the same guards, then moves on) — and the per-kind
  /// Stats::*Evictions counter grows by the number of dropped entries.
  /// 0 disables memoization entirely.
  void setSatCacheCapacity(size_t MaxEntries);
  size_t satCacheCapacity() const;

  // Base queries ------------------------------------------------------------

  /// Satisfiability of \p Formula with its free variables existential.
  /// Sat/Unsat answers are memoized per hash-consed formula pointer (see
  /// Stats::CacheHits); isValid and equivalentUnder share the memo because
  /// they reduce to checkSat of a negation.
  SatResult checkSat(TermRef Formula);

  /// IsSat(phi) of §3.1; Unknown becomes an error (classified as Timeout /
  /// Cancelled / SolverError via unknownStatus).
  Result<bool> isSat(TermRef Formula);

  /// IsValid(phi) of §3.1; Unknown becomes an error.
  Result<bool> isValid(TermRef Formula);

  /// Classifies the most recent Unknown answer into a Status whose code
  /// distinguishes a query timeout from deadline cancellation from a
  /// backend exception. \p What prefixes the message. Only meaningful
  /// immediately after a checkSat that returned Unknown.
  Status unknownStatus(const std::string &What) const;

  /// A model of \p Formula for Var(0..NumVars-1). Variables that do not
  /// occur in the formula get an arbitrary value of their type in
  /// \p VarTypes. Errors if unsatisfiable or unknown.
  Result<std::vector<Value>> getModel(TermRef Formula,
                                      const std::vector<Type> &VarTypes);

  /// f ==_guard g (§3.3): valid(guard -> f = g). \p F and \p G must have the
  /// same non-boolean type.
  Result<bool> equivalentUnder(TermRef Guard, TermRef F, TermRef G);

  // Incremental sessions ------------------------------------------------------
  //
  // A scoped assertion stack lives alongside the one-shot entry points
  // above. Only checkSatAssuming consults it; checkSat/getModel/... remain
  // stack-independent (their memo tables stay sound). With
  // SolverControl::Incremental set the stack is mirrored into a persistent
  // backend solver so consecutive scoped checks pay only for their delta;
  // with it clear the same calls re-send the whole conjunction through the
  // one-shot path — verdicts agree either way.

  /// Opens a new assertion scope.
  void push();

  /// Closes the innermost scope, retracting its assertions (and
  /// invalidating their scoped-memo answers via the generation bump).
  /// Popping with no open scope is a no-op.
  void pop();

  /// Number of open scopes (0 = base frame only).
  unsigned scopeDepth() const;

  /// Monotone counter bumped by every push/pop/assertFormula. Scoped memo
  /// answers are keyed by (generation, formula, assumptions), so a pop
  /// invalidates them without clearing the global memo.
  uint64_t scopeGeneration() const;

  /// Asserts \p Formula in the innermost scope; retracted by the matching
  /// pop. Asserting in the base frame persists for the session's lifetime.
  void assertFormula(TermRef Formula);

  /// Satisfiability of (asserted stack) /\ \p Formula /\ /\ Assumptions.
  /// \p Formula may be null ("stack plus assumptions alone"); it is checked
  /// under an ephemeral scope, so nothing leaks into the session. Sat/Unsat
  /// answers are memoized per scope generation. Deadlines, fault injection,
  /// retry-on-Unknown, and latency metrics all flow through the same
  /// chokepoint as one-shot queries.
  SatResult checkSatAssuming(const std::vector<TermRef> &Assumptions,
                             TermRef Formula = nullptr);

  /// Coalesced satisfiability for independent formulas: the k formulas are
  /// variable-disjointly renamed, asserted under selector literals in one
  /// backend solver, and decided with at most a handful of
  /// check-sat-assuming rounds (a sat answer settles every pending member
  /// at once; an unsat core narrows the suspects). Verdicts are identical
  /// to k checkSat calls — members the batch cannot settle (Unknown) fall
  /// back to the one-shot path individually — and Sat/Unsat answers land
  /// in the same global memo. Independent of the scoped assertion stack.
  std::vector<SatResult> checkSatBatch(const std::vector<TermRef> &Formulas);

  // Quantifier elimination ----------------------------------------------------

  /// Computes a quantifier-free term equivalent to
  ///   exists Var(0)..Var(NumEliminate-1) . Phi
  /// over the remaining variables, re-indexed downward by \p NumEliminate.
  /// Tries Z3's qe tactic cascade; fails if elimination or back-translation
  /// is impossible (callers then use the image-predicate fallbacks).
  Result<TermRef> eliminateExists(TermRef Phi, unsigned NumEliminate);

  // Image predicates (Definition 4.9, §4.3) -------------------------------------

  /// Whether some input produces an output: sat(Guard).
  Result<bool> imageIsSat(const ImagePredicate &P);

  /// A concrete output tuple in the image.
  Result<std::vector<Value>> imageModel(const ImagePredicate &P);

  /// The unary projection psi_I(y) = exists x. Guard /\ y = Outputs[I](x),
  /// as a quantifier-free term over Var(0). Strategy chain: exact model
  /// enumeration (capped for wide bit-vectors), the QE cascade, then either
  /// exact interval learning or — when \p AllowHull is set — a [min, max]
  /// hull computed with quantifier-free binary search, which may
  /// over-approximate fragmented images. Pass AllowHull only where an
  /// over-approximation is sound (the ambiguity check validates its
  /// witnesses, so it qualifies).
  Result<TermRef> project(const ImagePredicate &P, unsigned I,
                          bool AllowHull = false);

  /// Whether psi is Cartesian (§4.3): equivalent to the conjunction of its
  /// unary projections. Projections are computed internally; the exactness
  /// check discharges one quantified query per predicate.
  Result<bool> isCartesian(const ImagePredicate &P);

  /// A quantifier-free term over Var(0..arity-1) equivalent to psi. For
  /// Cartesian predicates this is the conjunction of the projections (the
  /// readable form used in inverted programs); otherwise falls back to
  /// direct quantifier elimination.
  Result<TermRef> imageToTerm(const ImagePredicate &P);

  // Introspection -------------------------------------------------------------

  struct Stats {
    uint64_t SatQueries = 0;
    uint64_t QeCalls = 0;
    uint64_t QeFallbacks = 0;
    /// checkSat calls answered from the pointer-keyed memo table.
    uint64_t CacheHits = 0;
    /// checkSat calls that reached the SMT backend (Unknown answers are
    /// not cached, so they count as misses on every retry).
    uint64_t CacheMisses = 0;
    /// Memoized answers dropped by generation clears of the checkSat memo
    /// (see setSatCacheCapacity).
    uint64_t CacheEvictions = 0;
    /// getModel answers served from / missed by / evicted from the model
    /// memo, keyed by (formula, requested variable types). Only successful
    /// models are cached; unsat/unknown outcomes retry the backend.
    uint64_t ModelCacheHits = 0;
    uint64_t ModelCacheMisses = 0;
    uint64_t ModelCacheEvictions = 0;
    /// project() answers served from / missed by / evicted from the
    /// projection memo, keyed by (guard, outputs, position, hull flag).
    uint64_t ProjCacheHits = 0;
    uint64_t ProjCacheMisses = 0;
    uint64_t ProjCacheEvictions = 0;
    /// Escalated re-checks issued by the retry-on-Unknown policy.
    uint64_t Retries = 0;
    /// Queries still Unknown (timed out) after the retry policy ran.
    uint64_t QueryTimeouts = 0;
    /// Queries refused up front because the cancellation token fired.
    uint64_t QueriesCancelled = 0;
    /// Synthetic faults fired by the installed FaultPlan.
    uint64_t InjectedFaults = 0;
    /// Scope lifecycle: explicit push() / pop() calls on this session.
    uint64_t ScopePushes = 0;
    uint64_t ScopePops = 0;
    /// Coalesced batches dispatched by checkSatBatch (each covers >= 2
    /// formulas that missed the memo).
    uint64_t AssumptionBatches = 0;
    /// Assumption literals sent across scoped and batched checks.
    uint64_t AssumptionLiterals = 0;
    /// Scoped queries answered on an already-live backend session (the
    /// incremental win: only the delta was sent).
    uint64_t IncrementalHits = 0;
    /// Backend sessions (re)built from the term-level stack: the first
    /// scoped query, plus every rebuild after a backend exception dropped
    /// the live session.
    uint64_t FullRestarts = 0;
    /// Scoped (generation-keyed) memo traffic.
    uint64_t ScopedCacheHits = 0;
    uint64_t ScopedCacheMisses = 0;
    uint64_t ScopedCacheEvictions = 0;

    /// Field-wise sum, for aggregating worker-session stats.
    Stats &operator+=(const Stats &O) {
      SatQueries += O.SatQueries;
      QeCalls += O.QeCalls;
      QeFallbacks += O.QeFallbacks;
      CacheHits += O.CacheHits;
      CacheMisses += O.CacheMisses;
      CacheEvictions += O.CacheEvictions;
      ModelCacheHits += O.ModelCacheHits;
      ModelCacheMisses += O.ModelCacheMisses;
      ModelCacheEvictions += O.ModelCacheEvictions;
      ProjCacheHits += O.ProjCacheHits;
      ProjCacheMisses += O.ProjCacheMisses;
      ProjCacheEvictions += O.ProjCacheEvictions;
      Retries += O.Retries;
      QueryTimeouts += O.QueryTimeouts;
      QueriesCancelled += O.QueriesCancelled;
      InjectedFaults += O.InjectedFaults;
      ScopePushes += O.ScopePushes;
      ScopePops += O.ScopePops;
      AssumptionBatches += O.AssumptionBatches;
      AssumptionLiterals += O.AssumptionLiterals;
      IncrementalHits += O.IncrementalHits;
      FullRestarts += O.FullRestarts;
      ScopedCacheHits += O.ScopedCacheHits;
      ScopedCacheMisses += O.ScopedCacheMisses;
      ScopedCacheEvictions += O.ScopedCacheEvictions;
      return *this;
    }

    /// Field-wise difference, for reporting a session's traffic relative
    /// to a baseline snapshot (warm-pool runs reuse a solver whose
    /// counters accumulate across requests).
    Stats &operator-=(const Stats &O) {
      SatQueries -= O.SatQueries;
      QeCalls -= O.QeCalls;
      QeFallbacks -= O.QeFallbacks;
      CacheHits -= O.CacheHits;
      CacheMisses -= O.CacheMisses;
      CacheEvictions -= O.CacheEvictions;
      ModelCacheHits -= O.ModelCacheHits;
      ModelCacheMisses -= O.ModelCacheMisses;
      ModelCacheEvictions -= O.ModelCacheEvictions;
      ProjCacheHits -= O.ProjCacheHits;
      ProjCacheMisses -= O.ProjCacheMisses;
      ProjCacheEvictions -= O.ProjCacheEvictions;
      Retries -= O.Retries;
      QueryTimeouts -= O.QueryTimeouts;
      QueriesCancelled -= O.QueriesCancelled;
      InjectedFaults -= O.InjectedFaults;
      ScopePushes -= O.ScopePushes;
      ScopePops -= O.ScopePops;
      AssumptionBatches -= O.AssumptionBatches;
      AssumptionLiterals -= O.AssumptionLiterals;
      IncrementalHits -= O.IncrementalHits;
      FullRestarts -= O.FullRestarts;
      ScopedCacheHits -= O.ScopedCacheHits;
      ScopedCacheMisses -= O.ScopedCacheMisses;
      ScopedCacheEvictions -= O.ScopedCacheEvictions;
      return *this;
    }
  };
  const Stats &stats() const;

  TermFactory &factory();

private:
  class Impl;
  std::unique_ptr<Impl> TheImpl;
};

/// RAII wrapper for one solver scope: push on construction, pop on
/// destruction — including unwind paths, so a cancelled or faulted loop
/// never leaks its assertions into a reused session. add() asserts into
/// the scope it opened.
class ScopedAssertions {
public:
  explicit ScopedAssertions(Solver &S) : S(S) { S.push(); }
  ~ScopedAssertions() { S.pop(); }
  ScopedAssertions(const ScopedAssertions &) = delete;
  ScopedAssertions &operator=(const ScopedAssertions &) = delete;

  void add(TermRef Formula) { S.assertFormula(Formula); }

private:
  Solver &S;
};

} // namespace genic

#endif // GENIC_SOLVER_SOLVER_H
