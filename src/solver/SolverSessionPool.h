//===- solver/SolverSessionPool.h - Leasable warm solver sessions ---------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pool of private TermFactory+Solver sessions for parallel decision
/// procedures. TermFactory and Solver are not thread-safe, so parallel
/// checkers give each worker task its own session; creating one per task
/// would re-clone every shared guard and re-warm the SMT context each time.
/// The pool instead leases sessions: a task borrows one, runs its queries,
/// and returns it, so a later task (often processing the same transitions
/// or the next BFS level) reuses the session's memoized cloner, checkSat
/// memo, and warm Z3 context.
///
/// Determinism contract: because mkAnd/mkOr canonicalize children by
/// interning order, a reused session's *term structure* depends on which
/// tasks it served before — which is scheduling-dependent. Pooled sessions
/// must therefore only export plain data (booleans, values, indices) back
/// to the caller, never terms. Parallel stages whose results are terms
/// (e.g. the per-position projections of buildOutputAutomaton) use a fresh
/// session per task instead, whose history is a pure function of the task's
/// inputs.
///
/// lease() and Lease destruction are thread-safe; everything inside a
/// leased Session is exclusive to the holder until release.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_SOLVER_SOLVERSESSIONPOOL_H
#define GENIC_SOLVER_SOLVERSESSIONPOOL_H

#include "solver/Solver.h"
#include "solver/SolverContext.h"
#include "term/TermClone.h"
#include "term/TermFactory.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace genic {

class SolverSessionPool {
public:
  /// One private session, backed by a SolverContext. Import clones
  /// shared-factory terms into Factory and is memoized across leases, so
  /// re-importing a guard a previous task already used is a hash lookup —
  /// and when the pool is in fork mode (constructed over a frozen prefix
  /// factory) importing a prefix term is the identity, no lookup at all.
  struct Session {
    SolverContext Ctx;
    TermFactory &Factory;
    Solver &Slv;
    TermCloner &Import;

    explicit Session(unsigned TimeoutMs)
        : Ctx(TimeoutMs), Factory(Ctx.factory()), Slv(Ctx.solver()),
          Import(Ctx.importer()) {}
    Session(const TermFactory &FrozenPrefix, unsigned TimeoutMs)
        : Ctx(FrozenPrefix, TimeoutMs), Factory(Ctx.factory()),
          Slv(Ctx.solver()), Import(Ctx.importer()) {}
    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;
  };

  /// RAII borrow of one session; returns it to the pool on destruction.
  class Lease {
  public:
    Lease(Lease &&O) noexcept : Pool(O.Pool), S(O.S) {
      O.Pool = nullptr;
      O.S = nullptr;
    }
    Lease(const Lease &) = delete;
    Lease &operator=(const Lease &) = delete;
    Lease &operator=(Lease &&) = delete;
    ~Lease() {
      if (Pool)
        Pool->release(S);
    }

    Session &operator*() const { return *S; }
    Session *operator->() const { return S; }

  private:
    friend class SolverSessionPool;
    Lease(SolverSessionPool *Pool, Session *S) : Pool(Pool), S(S) {}
    SolverSessionPool *Pool;
    Session *S;
  };

  /// Sessions are created lazily with this per-query timeout, each with a
  /// fresh root factory.
  explicit SolverSessionPool(unsigned TimeoutMs) : TimeoutMs(TimeoutMs) {}

  /// Like above, but inherits both the timeout and the robustness control
  /// (cancellation token, fault plan) of \p Like; pooled sessions are
  /// marked as worker sessions for fault-plan scoping and tagged Pooled in
  /// the query-latency histograms.
  explicit SolverSessionPool(const Solver &Like)
      : TimeoutMs(Like.timeoutMs()), Ctl(Like.control()) {
    Ctl.WorkerSession = true;
    Ctl.Kind = SolverSessionKind::Pooled;
  }

  /// Fork mode: sessions are copy-on-write forks of \p FrozenPrefix, so
  /// every term the shared factory holds at session-creation time is
  /// importable for free. The prefix factory must outlive the pool and be
  /// quiescent whenever leased sessions run on other threads (the
  /// level-synchronized checkers guarantee this: workers run only while the
  /// coordinating thread blocks on the pool barrier). The data-only export
  /// contract above is unchanged.
  SolverSessionPool(const TermFactory &FrozenPrefix, unsigned TimeoutMs)
      : TimeoutMs(TimeoutMs), Prefix(&FrozenPrefix) {}

  /// Fork mode inheriting \p Like's timeout and robustness control.
  SolverSessionPool(const TermFactory &FrozenPrefix, const Solver &Like)
      : TimeoutMs(Like.timeoutMs()), Prefix(&FrozenPrefix),
        Ctl(Like.control()) {
    Ctl.WorkerSession = true;
    Ctl.Kind = SolverSessionKind::Pooled;
  }

  /// Borrows a free session, creating one if none is available. Thread-safe.
  Lease lease();

  /// Re-arms the pool for a new request: future and already-created
  /// sessions get \p Like's current robustness control (cancellation
  /// token, fault plan, metrics sink), worker-marked like the inheriting
  /// constructors. This is what lets a pool outlive one request — a warm
  /// engine entry keeps its sessions (and their memo caches) resident and
  /// re-arms them per request. Callable only while no lease is
  /// outstanding.
  void rearm(const Solver &Like);

  /// Number of sessions currently leased out. Thread-safe; used by the
  /// RAII-accounting assertions (must be 0 whenever a phase has joined all
  /// its workers, on success and on every error path).
  size_t outstandingLeases() const;

  struct Stats {
    uint64_t Created = 0; ///< sessions constructed
    uint64_t Leases = 0;  ///< total lease() calls
    /// Leases served by an already-warm session.
    uint64_t reuses() const { return Leases - Created; }
  };
  Stats stats() const;

  /// Number of sessions ever created.
  unsigned sessions() const;

  /// Sum of the per-session solver counters. Callable only while no lease
  /// is outstanding.
  Solver::Stats solverStats() const;

private:
  void release(Session *S);

  unsigned TimeoutMs;
  const TermFactory *Prefix = nullptr;
  /// Control installed on every created session (worker-marked).
  SolverControl Ctl;
  mutable std::mutex M;
  std::vector<std::unique_ptr<Session>> All;
  std::vector<Session *> Free;
  Stats TheStats;
};

} // namespace genic

#endif // GENIC_SOLVER_SOLVERSESSIONPOOL_H
