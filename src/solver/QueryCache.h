//===- solver/QueryCache.h - Bounded memo tables for solver queries -------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One eviction policy for every solver-side memo table. A QueryCache is a
/// bounded map with generation-clear eviction: when an insertion would
/// exceed the capacity the whole table is dropped and the number of dropped
/// entries is counted as evictions. Generation clears are chosen over LRU
/// because the keys are hash-consed pointers and the hit distribution is
/// bursty — a pipeline phase re-queries the same formulas, then moves on —
/// so recency tracking buys nothing over periodic resets. checkSat, model,
/// and projection memoization in Solver all sit on this template.
///
/// GuardOverlapCache is the thread-safe sibling used by the ambiguity
/// product search: one instance is shared across every CEGAR round of an
/// injectivity check so the hull and exact rounds stop re-discharging
/// identical (guard, guard) product queries.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_SOLVER_QUERYCACHE_H
#define GENIC_SOLVER_QUERYCACHE_H

#include "support/Trace.h"
#include "term/Term.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

namespace genic {

/// Bounded memo table with generation-clear eviction and hit/miss/eviction
/// counters. Not thread-safe — each Solver owns its own instances.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class QueryCache {
public:
  /// \p TraceName, when given (a static string literal), labels the
  /// generation-clear instant events this cache emits into the trace.
  explicit QueryCache(size_t Capacity, const char *TraceName = nullptr)
      : Cap(Capacity), TraceName(TraceName) {}

  /// Memoized value for \p K, or null. Counts a hit or a miss.
  const Value *find(const Key &K) {
    auto It = Map.find(K);
    if (It == Map.end()) {
      ++TheMisses;
      return nullptr;
    }
    ++TheHits;
    return &It->second;
  }

  /// Records \p K -> \p V, generation-clearing first when full. A capacity
  /// of 0 disables the cache entirely (nothing is stored, nothing evicted).
  void insert(const Key &K, Value V) {
    if (Cap == 0)
      return;
    if (Map.size() >= Cap) {
      TheEvictions += Map.size();
      traceClear(Map.size());
      Map.clear();
    }
    Map.emplace(K, std::move(V));
  }

  /// Changes the capacity; shrinking below the current size clears the
  /// table (counted as evictions), matching the insertion-time policy.
  void setCapacity(size_t MaxEntries) {
    Cap = MaxEntries;
    if (Map.size() > Cap) {
      TheEvictions += Map.size();
      traceClear(Map.size());
      Map.clear();
    }
  }
  size_t capacity() const { return Cap; }
  size_t size() const { return Map.size(); }

  uint64_t hits() const { return TheHits; }
  uint64_t misses() const { return TheMisses; }
  uint64_t evictions() const { return TheEvictions; }

private:
  /// Announces a generation clear in the trace. Evictions are rare (a full
  /// table) so this stays off the lookup hot path entirely.
  void traceClear(size_t Dropped) {
    if (TraceName)
      TraceRecorder::global().instant("cache.evict", TraceName, "dropped",
                                      static_cast<int64_t>(Dropped));
  }

  std::unordered_map<Key, Value, Hash> Map;
  size_t Cap;
  const char *TraceName = nullptr;
  uint64_t TheHits = 0;
  uint64_t TheMisses = 0;
  uint64_t TheEvictions = 0;
};

/// Memo key for scoped (incremental) satisfiability answers. A scoped
/// verdict is only reusable while the assertion stack that produced it is
/// unchanged, so the key carries the owning session's scope generation —
/// a monotone counter bumped by every push, pop, and scoped assertion.
/// Popping a scope therefore invalidates its memoized answers for free:
/// stale generations simply stop matching and age out with the next
/// generation clear, without touching the global (stack-independent) memo.
struct ScopedQueryKey {
  uint64_t Generation;
  /// Extra formula checked on top of the stack; null for "stack alone".
  TermRef Formula;
  /// Assumption literals, in dispatch order (the order is a pure function
  /// of the caller's work order, so it is jobs-invariant and canonical).
  std::vector<TermRef> Assumptions;

  bool operator==(const ScopedQueryKey &O) const {
    return Generation == O.Generation && Formula == O.Formula &&
           Assumptions == O.Assumptions;
  }
};

struct ScopedQueryKeyHash {
  size_t operator()(const ScopedQueryKey &K) const {
    size_t H = std::hash<uint64_t>()(K.Generation);
    auto Mix = [&H](size_t V) {
      H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
    };
    Mix(std::hash<const void *>()(K.Formula));
    for (TermRef A : K.Assumptions)
      Mix(std::hash<const void *>()(A));
    return H;
  }
};

/// Satisfiability verdicts for guard-pair overlaps, shared across threads
/// and across CEGAR rounds. Keys are TermRefs of the factory the automaton
/// lives in (hash-consed, so stable for the whole injectivity check); the
/// ordered map keeps iteration deterministic for debugging. All operations
/// take the internal mutex — contention is negligible next to the SMT calls
/// the cache avoids.
class GuardOverlapCache {
public:
  std::optional<bool> lookup(TermRef A, TermRef B) {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Table.find({A, B});
    if (It == Table.end()) {
      ++TheMisses;
      return std::nullopt;
    }
    ++TheHits;
    return It->second;
  }

  void record(TermRef A, TermRef B, bool Sat) {
    std::lock_guard<std::mutex> Lock(M);
    Table.emplace(std::make_pair(A, B), Sat);
  }

  uint64_t hits() const {
    std::lock_guard<std::mutex> Lock(M);
    return TheHits;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> Lock(M);
    return TheMisses;
  }
  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Table.size();
  }

private:
  mutable std::mutex M;
  std::map<std::pair<TermRef, TermRef>, bool> Table;
  uint64_t TheHits = 0;
  uint64_t TheMisses = 0;
};

} // namespace genic

#endif // GENIC_SOLVER_QUERYCACHE_H
