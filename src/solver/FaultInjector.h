//===- solver/FaultInjector.h - Deterministic solver fault injection ------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault plan for the solver bridge: fire a synthetic
/// `Unknown` or a synthetic `z3::exception` at the Nth backend query of a
/// Solver instance. Query ordinals are counted per Solver (shared session
/// and every pooled/forked worker session count independently), so a plan is
/// reproducible regardless of `--jobs`: the Nth query of any given session
/// is the same query at every thread count. Plans are parsed from the
/// `--fault-inject` CLI flag / `GENIC_FAULT_INJECT` environment variable and
/// exist to make every retry and degradation path drivable from tests — the
/// production default is the empty plan, which compiles to a single enum
/// compare on the query path.
///
/// Spec grammar:  kind '@' at ['x' count] [':' scope]
///   kind   := 'unknown' | 'throw' | 'crash'
///   at     := 1-based ordinal of the first faulted query in each session
///   count  := how many consecutive queries fault (default 1; 0 = all
///             queries from `at` on). Count 1 lets the escalating retry
///             mask the fault; count 0 drives the give-up paths.
///   scope  := 'all' | 'shared' | 'workers' (default all) — whether the
///             plan applies to the shared session, worker sessions
///             (pool/fork), or both.
/// Examples: "unknown@5", "throw@3x2:shared", "unknown@1x0:workers".
///
/// The 'crash' kind exists for the process-isolation chaos tests: inside a
/// genic-worker process (which arms it via setCrashFaultsEnabled) it
/// SIGKILLs the process mid-query — an uncatchable death the supervisor
/// must detect and recover from. In an unarmed process it downgrades to
/// 'throw', so a stray crash plan can never take down the coordinator or
/// the daemon it was meant to protect.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_SOLVER_FAULTINJECTOR_H
#define GENIC_SOLVER_FAULTINJECTOR_H

#include "support/Result.h"

#include <cstdint>
#include <string>

namespace genic {

/// A deterministic schedule of synthetic solver faults. Value type; copied
/// into every session a SolverControl propagates to.
struct FaultPlan {
  enum class Kind {
    None,    // no faults (the production default)
    Unknown, // the query reports Unknown, as a timeout would
    Throw,   // the query raises a synthetic z3::exception
    Crash,   // SIGKILL the process (armed worker), else same as Throw
  };
  enum class Scope {
    All,     // every session
    Shared,  // only the shared (non-worker) session
    Workers, // only pooled / forked worker sessions
  };

  Kind FaultKind = Kind::None;
  Scope FaultScope = Scope::All;
  /// 1-based ordinal (per Solver instance) of the first faulted query.
  uint64_t AtQuery = 0;
  /// Number of consecutive faulted queries; 0 means every query from
  /// AtQuery on.
  uint64_t Count = 1;

  bool enabled() const { return FaultKind != Kind::None; }

  /// Whether the plan applies to a session with the given worker-ness.
  bool appliesTo(bool WorkerSession) const {
    switch (FaultScope) {
    case Scope::All:
      return true;
    case Scope::Shared:
      return !WorkerSession;
    case Scope::Workers:
      return WorkerSession;
    }
    return true;
  }

  /// Whether the fault fires at the given 1-based query ordinal.
  bool firesAt(uint64_t Ordinal) const {
    if (!enabled() || Ordinal < AtQuery)
      return false;
    return Count == 0 || Ordinal < AtQuery + Count;
  }
};

/// Parses the `--fault-inject` spec grammar documented above.
Result<FaultPlan> parseFaultPlan(const std::string &Spec);

/// Canonical round-trippable rendering of a plan ("-" for the empty plan).
std::string describeFaultPlan(const FaultPlan &Plan);

/// Arms (or disarms) Kind::Crash for this process. Only genic-worker main
/// arms it; everywhere else a crash plan behaves as Kind::Throw.
void setCrashFaultsEnabled(bool Enabled);

/// Whether Kind::Crash is armed in this process.
bool crashFaultsEnabled();

} // namespace genic

#endif // GENIC_SOLVER_FAULTINJECTOR_H
