//===- solver/Solver.cpp - Z3-backed decision procedures -------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the Solver over the Z3 C++ API. The structure:
///
///  - translate():     Term -> z3::expr (auxiliary calls inlined first)
///  - backTranslate(): z3::expr -> Term, for QE results; fails cleanly on
///                     operators outside our term language, triggering the
///                     fallbacks below
///  - eliminateExists(): tactic cascade qe_lite -> qe -> qe2
///  - project():       strategy chain — exact model enumeration (capped for
///                     wide bit-vectors), QE for integers, exact interval
///                     learning with one-alternation containment queries,
///                     and an optional [min, max] hull by quantifier-free
///                     binary search for callers that validate downstream
///  - isCartesian():   the §4.3 check, phrased as "the conjunction of the
///                     unary projections implies the image predicate"
///                     (the converse holds by construction of projections);
///                     kept for the API — the injectivity pipeline avoids
///                     its Sigma_2 query (see transducer/Injectivity.cpp)
///
//===----------------------------------------------------------------------===//

#include "solver/Solver.h"

#include "solver/QueryCache.h"
#include "solver/QueryWatch.h"
#include "support/Metrics.h"
#include "term/Eval.h"
#include "term/Printer.h"

#include <z3++.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <limits>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace genic;

namespace {

/// A closed interval of bit-vector values, used by the interval-learning
/// fallback of project().
struct Interval {
  uint64_t Lo;
  uint64_t Hi;
};

size_t hashMix(size_t Seed, size_t V) {
  return Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

/// Memo key for getModel: the same formula queried for different variable
/// type lists is a different query (unconstrained variables default per
/// type).
struct ModelKey {
  TermRef Formula;
  std::vector<Type> Types;
  bool operator==(const ModelKey &O) const {
    return Formula == O.Formula && Types == O.Types;
  }
};
struct ModelKeyHash {
  size_t operator()(const ModelKey &K) const {
    size_t H = std::hash<const void *>()(K.Formula);
    for (const Type &Ty : K.Types)
      H = hashMix(H, Ty.hash());
    return H;
  }
};

/// Memo key for project(): the image predicate's identity plus the
/// requested position and strategy. Hull and exact projections of the same
/// predicate are distinct entries (the hull may over-approximate).
struct ProjKey {
  TermRef Guard;
  std::vector<TermRef> Outputs;
  unsigned NumInputs;
  unsigned Index;
  bool Hull;
  bool operator==(const ProjKey &O) const {
    return Guard == O.Guard && Outputs == O.Outputs &&
           NumInputs == O.NumInputs && Index == O.Index && Hull == O.Hull;
  }
};
struct ProjKeyHash {
  size_t operator()(const ProjKey &K) const {
    size_t H = std::hash<const void *>()(K.Guard);
    for (TermRef O : K.Outputs)
      H = hashMix(H, reinterpret_cast<size_t>(O));
    H = hashMix(H, K.NumInputs);
    H = hashMix(H, K.Index);
    return hashMix(H, K.Hull ? 1 : 0);
  }
};

bool hasQuantifier(const z3::expr &E) {
  if (E.is_quantifier())
    return true;
  if (!E.is_app())
    return false;
  for (unsigned I = 0, N = E.num_args(); I != N; ++I)
    if (hasQuantifier(E.arg(I)))
      return true;
  return false;
}

} // namespace

const char *genic::toString(SolverSessionKind Kind) {
  switch (Kind) {
  case SolverSessionKind::Shared:
    return "shared";
  case SolverSessionKind::Pooled:
    return "pooled";
  case SolverSessionKind::Worker:
    return "worker";
  }
  return "shared";
}

class Solver::Impl {
public:
  explicit Impl(TermFactory &Factory) : Factory(Factory), Ctx() {}

  TermFactory &Factory;
  z3::context Ctx;
  Stats TheStats;
  unsigned TimeoutMs = 20000;
  /// Robustness contract: cancellation token, fault plan, retry policy.
  SolverControl Control;
  /// 1-based ordinal of backend queries dispatched by this session; the
  /// FaultPlan keys off it, so a fault schedule is a pure function of the
  /// per-session query sequence (jobs-independent for any given session).
  uint64_t QueryOrdinal = 0;
  /// Why the most recent backend answer was Unknown; lets the Result
  /// wrappers classify Unknown into Timeout / Cancelled / SolverError.
  enum class UnknownCause { None, Timeout, Cancelled, Exception };
  UnknownCause LastUnknown = UnknownCause::None;
  /// Memoized checkSat answers, keyed by hash-consed formula pointer. Sat
  /// and Unsat are stable facts about a formula; Unknown (timeout, Z3
  /// hiccup) is never cached so a retry gets a fresh chance. Bounded with
  /// a generation clear (see setSatCacheCapacity).
  QueryCache<TermRef, SatResult> SatCache{1u << 20, "solver.sat"};
  /// Successful getModel answers. A fresh z3 solver is built per model
  /// query, so the answer is a function of the formula alone — repeated
  /// queries (guard sampling, witness reconstruction) hit here. Smaller
  /// default cap than SatCache: values are whole model vectors.
  QueryCache<ModelKey, std::vector<Value>, ModelKeyHash> ModelCache{
      1u << 16, "solver.model"};
  /// Successful project() answers. The CEGAR loop re-projects the same
  /// (rule, position) predicates in the exact round after the hull round,
  /// and isCartesian/imageToTerm re-project every position.
  QueryCache<ProjKey, TermRef, ProjKeyHash> ProjCache{1u << 16,
                                                      "solver.proj"};

  // -- Incremental sessions --------------------------------------------------

  /// Term-level assertion stack, the source of truth for scoped solving.
  /// Scopes[0] is the base frame; push/pop append and drop frames. Always
  /// maintained — even with incremental solving off — so the one-shot
  /// fallback and a rebuild after a dropped backend session see identical
  /// semantics.
  std::vector<std::vector<TermRef>> Scopes =
      std::vector<std::vector<TermRef>>(1);
  /// Bumped by every push, pop, and scoped assertion; keys the scoped memo
  /// so stale answers die with their generation (no global-memo clears).
  uint64_t ScopeGen = 0;
  /// Persistent backend mirror of Scopes, created lazily on the first
  /// scoped query. Purely an accelerator: any backend exception drops it
  /// and the next query rebuilds from Scopes, so a fault or cancellation
  /// mid-scope can never leak assertions into a reused session.
  std::unique_ptr<z3::solver> Inc;
  /// Scoped Sat/Unsat answers keyed by (generation, formula, assumptions).
  QueryCache<ScopedQueryKey, SatResult, ScopedQueryKeyHash> ScopedCache{
      1u << 16, "solver.scoped"};
  /// When nonzero, translated variables are renamed v<i> -> b<tag>v<i>;
  /// checkSatBatch uses one tag per member so the members share no
  /// variables and the conjunction is satisfiable iff each member is.
  unsigned VarNameTag = 0;

  struct VarTagScope {
    VarTagScope(Impl &I, unsigned Tag) : I(I) { I.VarNameTag = Tag; }
    ~VarTagScope() { I.VarNameTag = 0; }
    Impl &I;
  };

  // -- Translation ---------------------------------------------------------

  z3::sort sortOf(const Type &Ty) {
    if (Ty.isBool())
      return Ctx.bool_sort();
    if (Ty.isInt())
      return Ctx.int_sort();
    return Ctx.bv_sort(Ty.width());
  }

  z3::expr varExpr(unsigned Index, const Type &Ty) {
    std::string Name;
    if (VarNameTag)
      Name = "b" + std::to_string(VarNameTag) + "v" + std::to_string(Index);
    else
      Name = "v" + std::to_string(Index);
    return Ctx.constant(Name.c_str(), sortOf(Ty));
  }

  z3::expr valueExpr(const Value &V) {
    if (V.type().isBool())
      return Ctx.bool_val(V.getBool());
    if (V.type().isInt())
      return Ctx.int_val(static_cast<int64_t>(V.getInt()));
    return Ctx.bv_val(V.getBits(), V.type().width());
  }

  /// Translates \p T (auxiliary calls inlined) to a Z3 expression.
  z3::expr translate(TermRef T) {
    TermRef Inlined = Factory.inlineCalls(T);
    std::unordered_map<TermRef, z3::expr> Memo;
    return translateRec(Inlined, Memo);
  }

  z3::expr translateRec(TermRef T,
                        std::unordered_map<TermRef, z3::expr> &Memo) {
    auto It = Memo.find(T);
    if (It != Memo.end())
      return It->second;
    z3::expr E = translateNode(T, Memo);
    Memo.emplace(T, E);
    return E;
  }

  z3::expr translateNode(TermRef T,
                         std::unordered_map<TermRef, z3::expr> &Memo) {
    auto Arg = [&](size_t I) { return translateRec(T->child(I), Memo); };
    switch (T->op()) {
    case Op::Const:
      return valueExpr(T->constValue());
    case Op::Var:
      return varExpr(T->varIndex(), T->type());
    case Op::Not:
      return !Arg(0);
    case Op::And: {
      z3::expr_vector V(Ctx);
      for (size_t I = 0, E = T->arity(); I != E; ++I)
        V.push_back(Arg(I));
      return z3::mk_and(V);
    }
    case Op::Or: {
      z3::expr_vector V(Ctx);
      for (size_t I = 0, E = T->arity(); I != E; ++I)
        V.push_back(Arg(I));
      return z3::mk_or(V);
    }
    case Op::Implies:
      return z3::implies(Arg(0), Arg(1));
    case Op::Iff:
    case Op::Eq:
      return Arg(0) == Arg(1);
    case Op::Ite:
      return z3::ite(Arg(0), Arg(1), Arg(2));
    case Op::IntAdd:
      return Arg(0) + Arg(1);
    case Op::IntSub:
      return Arg(0) - Arg(1);
    case Op::IntNeg:
      return -Arg(0);
    case Op::IntMul:
      return Arg(0) * Arg(1);
    case Op::IntLe:
      return Arg(0) <= Arg(1);
    case Op::IntLt:
      return Arg(0) < Arg(1);
    case Op::IntGe:
      return Arg(0) >= Arg(1);
    case Op::IntGt:
      return Arg(0) > Arg(1);
    case Op::BvAdd:
      return Arg(0) + Arg(1);
    case Op::BvSub:
      return Arg(0) - Arg(1);
    case Op::BvNeg:
      return -Arg(0);
    case Op::BvMul:
      return Arg(0) * Arg(1);
    case Op::BvAnd:
      return Arg(0) & Arg(1);
    case Op::BvOr:
      return Arg(0) | Arg(1);
    case Op::BvXor:
      return Arg(0) ^ Arg(1);
    case Op::BvNot:
      return ~Arg(0);
    case Op::BvShl:
      return z3::shl(Arg(0), Arg(1));
    case Op::BvLshr:
      return z3::lshr(Arg(0), Arg(1));
    case Op::BvAshr:
      return z3::ashr(Arg(0), Arg(1));
    case Op::BvUle:
      return z3::ule(Arg(0), Arg(1));
    case Op::BvUlt:
      return z3::ult(Arg(0), Arg(1));
    case Op::BvUge:
      return z3::uge(Arg(0), Arg(1));
    case Op::BvUgt:
      return z3::ugt(Arg(0), Arg(1));
    case Op::BvSle:
      return Arg(0) <= Arg(1); // Signed on bit-vector operands in z3++.
    case Op::BvSlt:
      return Arg(0) < Arg(1);
    case Op::BvSge:
      return Arg(0) >= Arg(1);
    case Op::BvSgt:
      return Arg(0) > Arg(1);
    case Op::Call:
      unreachable("calls survived inlining before translation");
    }
    unreachable("unhandled operator in translation");
  }

  // -- Back-translation ------------------------------------------------------

  /// Converts a Z3 expression produced by QE back into a Term. Variables are
  /// recognized by their "v<index>" names; \p VarTypes records the expected
  /// index->type mapping (entries may be missing for unused indices and are
  /// then derived from the Z3 sort).
  Result<TermRef> backTranslate(const z3::expr &E) {
    if (E.is_quantifier())
      return Status::error("back-translation: residual quantifier");
    if (!E.is_app())
      return Status::error("back-translation: non-application node");

    if (E.is_numeral())
      return backTranslateNumeral(E);

    Z3_decl_kind K = E.decl().decl_kind();
    if (K == Z3_OP_TRUE)
      return Factory.mkTrue();
    if (K == Z3_OP_FALSE)
      return Factory.mkFalse();

    if (K == Z3_OP_UNINTERPRETED && E.num_args() == 0) {
      std::string Name = E.decl().name().str();
      if (Name.size() < 2 || Name[0] != 'v')
        return Status::error("back-translation: foreign constant " + Name);
      unsigned Index = std::strtoul(Name.c_str() + 1, nullptr, 10);
      Result<Type> Ty = typeOfSort(E.get_sort());
      if (!Ty)
        return Ty.status();
      return Factory.mkVar(Index, *Ty);
    }

    std::vector<TermRef> Args;
    Args.reserve(E.num_args());
    for (unsigned I = 0, N = E.num_args(); I != N; ++I) {
      Result<TermRef> A = backTranslate(E.arg(I));
      if (!A)
        return A;
      Args.push_back(*A);
    }
    return backTranslateApp(E, K, Args);
  }

  Result<Type> typeOfSort(const z3::sort &S) {
    if (S.is_bool())
      return Type::boolTy();
    if (S.is_int())
      return Type::intTy();
    if (S.is_bv() && S.bv_size() <= 64)
      return Type::bitVecTy(S.bv_size());
    return Status::error("back-translation: unsupported sort");
  }

  Result<TermRef> backTranslateNumeral(const z3::expr &E) {
    if (E.get_sort().is_int()) {
      int64_t V;
      if (!E.is_numeral_i64(V))
        return Status::error("back-translation: integer numeral overflow");
      return Factory.mkInt(V);
    }
    if (E.get_sort().is_bv()) {
      if (E.get_sort().bv_size() > 64)
        return Status::error("back-translation: bit-vector wider than 64");
      uint64_t V;
      if (!E.is_numeral_u64(V))
        return Status::error("back-translation: bit-vector numeral overflow");
      return Factory.mkBv(V, E.get_sort().bv_size());
    }
    return Status::error("back-translation: unsupported numeral sort");
  }

  Result<TermRef> backTranslateApp(const z3::expr &E, Z3_decl_kind K,
                                   std::vector<TermRef> &Args) {
    auto FoldLeft = [&](Op O) {
      TermRef Acc = Args[0];
      for (size_t I = 1; I < Args.size(); ++I)
        Acc = Args[I]->type().isInt() ? Factory.mkIntOp(O, Acc, Args[I])
                                      : Factory.mkBvOp(O, Acc, Args[I]);
      return Acc;
    };
    switch (K) {
    case Z3_OP_AND:
      return Factory.mkAnd(std::move(Args));
    case Z3_OP_OR:
      return Factory.mkOr(std::move(Args));
    case Z3_OP_NOT:
      return Factory.mkNot(Args[0]);
    case Z3_OP_IMPLIES:
      return Factory.mkImplies(Args[0], Args[1]);
    case Z3_OP_IFF:
      return Factory.mkIff(Args[0], Args[1]);
    case Z3_OP_EQ:
      if (Args[0]->type().isBool())
        return Factory.mkIff(Args[0], Args[1]);
      return Factory.mkEq(Args[0], Args[1]);
    case Z3_OP_DISTINCT:
      if (Args.size() != 2 || Args[0]->type().isBool())
        return Status::error("back-translation: n-ary distinct");
      return Factory.mkDistinct(Args[0], Args[1]);
    case Z3_OP_ITE:
      return Factory.mkIte(Args[0], Args[1], Args[2]);
    case Z3_OP_LE:
      return Factory.mkIntOp(Op::IntLe, Args[0], Args[1]);
    case Z3_OP_LT:
      return Factory.mkIntOp(Op::IntLt, Args[0], Args[1]);
    case Z3_OP_GE:
      return Factory.mkIntOp(Op::IntGe, Args[0], Args[1]);
    case Z3_OP_GT:
      return Factory.mkIntOp(Op::IntGt, Args[0], Args[1]);
    case Z3_OP_ADD:
      return FoldLeft(Op::IntAdd);
    case Z3_OP_SUB:
      return FoldLeft(Op::IntSub);
    case Z3_OP_MUL:
      return FoldLeft(Op::IntMul);
    case Z3_OP_UMINUS:
      return Factory.mkIntOp(Op::IntNeg, Args[0]);
    case Z3_OP_BADD:
      return FoldLeft(Op::BvAdd);
    case Z3_OP_BSUB:
      return FoldLeft(Op::BvSub);
    case Z3_OP_BMUL:
      return FoldLeft(Op::BvMul);
    case Z3_OP_BNEG:
      return Factory.mkBvOp(Op::BvNeg, Args[0]);
    case Z3_OP_BAND:
      return FoldLeft(Op::BvAnd);
    case Z3_OP_BOR:
      return FoldLeft(Op::BvOr);
    case Z3_OP_BXOR:
      return FoldLeft(Op::BvXor);
    case Z3_OP_BNOT:
      return Factory.mkBvOp(Op::BvNot, Args[0]);
    case Z3_OP_BSHL:
      return Factory.mkBvOp(Op::BvShl, Args[0], Args[1]);
    case Z3_OP_BLSHR:
      return Factory.mkBvOp(Op::BvLshr, Args[0], Args[1]);
    case Z3_OP_BASHR:
      return Factory.mkBvOp(Op::BvAshr, Args[0], Args[1]);
    case Z3_OP_ULEQ:
      return Factory.mkBvOp(Op::BvUle, Args[0], Args[1]);
    case Z3_OP_ULT:
      return Factory.mkBvOp(Op::BvUlt, Args[0], Args[1]);
    case Z3_OP_UGEQ:
      return Factory.mkBvOp(Op::BvUge, Args[0], Args[1]);
    case Z3_OP_UGT:
      return Factory.mkBvOp(Op::BvUgt, Args[0], Args[1]);
    case Z3_OP_SLEQ:
      return Factory.mkBvOp(Op::BvSle, Args[0], Args[1]);
    case Z3_OP_SLT:
      return Factory.mkBvOp(Op::BvSlt, Args[0], Args[1]);
    case Z3_OP_SGEQ:
      return Factory.mkBvOp(Op::BvSge, Args[0], Args[1]);
    case Z3_OP_SGT:
      return Factory.mkBvOp(Op::BvSgt, Args[0], Args[1]);
    default:
      return Status::error(std::string("back-translation: operator ") +
                           E.decl().name().str() + " outside term language");
    }
  }

  // -- Queries -----------------------------------------------------------------

  /// The soft timeout actually handed to Z3: the local per-query budget,
  /// clamped to the remaining global deadline (an expired deadline yields
  /// the 1ms floor rather than 0, since Z3 reads 0 as unlimited).
  unsigned effectiveTimeoutMs(unsigned LocalMs) const {
    return Control.Cancel.deadline().remainingMsClamped(LocalMs);
  }

  void applyTimeout(z3::solver &S, unsigned Ms) {
    if (Ms != 0) {
      z3::params P(Ctx);
      P.set("timeout", Ms);
      S.set(P);
    }
  }

  z3::solver makeSolver() {
    z3::solver S(Ctx);
    applyTimeout(S, effectiveTimeoutMs(TimeoutMs));
    return S;
  }

  /// Dispatches one backend query: counts the per-session ordinal, fires
  /// the fault plan if scheduled, and classifies an Unknown as a timeout.
  /// Assumption-literal checks consume ordinals exactly like plain checks
  /// (one per backend dispatch), so a fault schedule remains a pure
  /// function of the per-session query sequence.
  z3::check_result rawCheck(z3::solver &S,
                            const z3::expr_vector *Assumptions) {
    uint64_t Ordinal = ++QueryOrdinal;
    const FaultPlan &Faults = Control.Faults;
    if (Faults.enabled() && Faults.appliesTo(Control.WorkerSession) &&
        Faults.firesAt(Ordinal)) {
      ++TheStats.InjectedFaults;
      if (Faults.FaultKind == FaultPlan::Kind::Crash &&
          crashFaultsEnabled()) {
        // Chaos-test path: die the way a real Z3 segfault under a hard
        // rlimit does — no unwind, no flush, nothing the supervisor could
        // negotiate with.
        ::raise(SIGKILL);
      }
      if (Faults.FaultKind == FaultPlan::Kind::Throw ||
          Faults.FaultKind == FaultPlan::Kind::Crash) {
        LastUnknown = UnknownCause::Exception;
        throw z3::exception("injected solver fault");
      }
      LastUnknown = UnknownCause::Timeout; // injected Unknown acts as one
      return z3::unknown;
    }
    z3::check_result R = Assumptions ? S.check(*Assumptions) : S.check();
    if (R == z3::unknown)
      LastUnknown = UnknownCause::Timeout;
    return R;
  }

  /// The chokepoint every sat/model query funnels through: refuses work
  /// once the cancellation token fires, dispatches via rawCheck, and on an
  /// Unknown retries once with an escalated soft timeout on the same
  /// solver state (still clamped to the remaining global budget) before
  /// letting the Unknown surface. When a MetricsRegistry is installed the
  /// whole call (retry included, and the unwind path of an injected throw)
  /// is timed into the phase/kind-tagged query-latency histogram;
  /// incremental-path queries are additionally observed under the
  /// ".incremental" key of the same phase.
  z3::check_result check(z3::solver &S,
                         const z3::expr_vector *Assumptions = nullptr,
                         bool IncrementalQuery = false) {
    if (!Control.Metrics)
      return checkUnmetered(S, Assumptions);
    QueryLatencyScope Metered(*this, IncrementalQuery);
    return checkUnmetered(S, Assumptions);
  }

  /// RAII latency observer for check(); the destructor runs on the unwind
  /// path too, so injected solver exceptions stay accounted for. When the
  /// slow-query watch is armed it also registers the query in the calling
  /// thread's active-query slot (so the watchdog can flag it mid-flight)
  /// and reports the completion so over-threshold or timed-out queries
  /// bump the `solver.slowquery.*` counters.
  struct QueryLatencyScope {
    QueryLatencyScope(Impl &I, bool Incremental)
        : I(I), Incremental(Incremental),
          Start(std::chrono::steady_clock::now()) {
      if (QueryWatch::global().enabled())
        Watch.emplace(toString(I.Control.Kind));
    }
    ~QueryLatencyScope() {
      uint64_t Us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
      const char *Phase = currentMetricsPhase();
      const char *Kind = toString(I.Control.Kind);
      MetricsRegistry &Registry = *I.Control.Metrics;
      std::string Name = "solver.query.us.";
      Name += Phase;
      Name += '.';
      Name += Kind;
      Registry.histogram(Name).observe(Us);
      if (Incremental) {
        std::string IncName = "solver.query.us.";
        IncName += Phase;
        IncName += ".incremental";
        Registry.histogram(IncName).observe(Us);
      }
      QueryWatch::global().noteCompletion(
          Us, I.LastUnknown == UnknownCause::Timeout, Phase, Kind, &Registry);
    }
    Impl &I;
    bool Incremental;
    std::optional<QueryWatch::Scope> Watch;
    std::chrono::steady_clock::time_point Start;
  };

  z3::check_result checkUnmetered(z3::solver &S,
                                  const z3::expr_vector *Assumptions) {
    LastUnknown = UnknownCause::None;
    if (Control.Cancel.cancelled()) {
      ++TheStats.QueriesCancelled;
      LastUnknown = UnknownCause::Cancelled;
      return z3::unknown;
    }
    ++TheStats.SatQueries;
    z3::check_result R = rawCheck(S, Assumptions);
    if (R == z3::unknown && LastUnknown == UnknownCause::Timeout &&
        Control.RetryUnknown && !Control.Cancel.cancelled()) {
      ++TheStats.Retries;
      ++TheStats.SatQueries;
      unsigned Escalated = TimeoutMs == 0
                               ? 0
                               : saturatingMulMs(TimeoutMs,
                                                 Control.RetryTimeoutFactor);
      applyTimeout(S, effectiveTimeoutMs(Escalated));
      R = rawCheck(S, Assumptions);
      // Restore the base budget for later queries on this solver state
      // (incremental loops keep checking after a masked hiccup).
      applyTimeout(S, effectiveTimeoutMs(TimeoutMs));
    }
    if (R == z3::unknown && LastUnknown == UnknownCause::Timeout)
      ++TheStats.QueryTimeouts;
    return R;
  }

  SatResult toSatResult(z3::check_result R) {
    switch (R) {
    case z3::sat:
      return SatResult::Sat;
    case z3::unsat:
      return SatResult::Unsat;
    default:
      return SatResult::Unknown;
    }
  }

  static unsigned saturatingMulMs(unsigned Ms, unsigned Factor) {
    uint64_t Wide = uint64_t(Ms) * std::max(1u, Factor);
    return Wide > std::numeric_limits<unsigned>::max()
               ? std::numeric_limits<unsigned>::max()
               : unsigned(Wide);
  }

  /// Classifies the most recent Unknown into a coded Status.
  Status unknownStatus(const std::string &What) const {
    switch (LastUnknown) {
    case UnknownCause::Cancelled:
      return Status::cancelled(What + ": cancelled by global deadline");
    case UnknownCause::Exception:
      return Status::solverError(What + ": solver raised an exception");
    default:
      return Status::timeout(What + ": solver returned unknown");
    }
  }

  SatResult checkExpr(const z3::expr &E) {
    z3::solver S = makeSolver();
    S.add(E);
    switch (check(S)) {
    case z3::sat:
      return SatResult::Sat;
    case z3::unsat:
      return SatResult::Unsat;
    default:
      return SatResult::Unknown;
    }
  }

  Result<bool> isSatExpr(const z3::expr &E, const char *What) {
    switch (checkExpr(E)) {
    case SatResult::Sat:
      return true;
    case SatResult::Unsat:
      return false;
    default:
      return unknownStatus(std::string("solver query for ") + What);
    }
  }

  // -- Scoped sessions -------------------------------------------------------

  /// Discards the live backend session. State is never lost: the term-level
  /// Scopes stack is the source of truth and ensureInc() replays it.
  void dropInc() { Inc.reset(); }

  /// The live backend mirror of Scopes, (re)built on demand. Every rebuild
  /// counts as a full restart; the timeout is re-clamped on each call since
  /// the global deadline shrinks between queries.
  z3::solver &ensureInc() {
    if (!Inc) {
      Inc = std::make_unique<z3::solver>(Ctx);
      ++TheStats.FullRestarts;
      for (size_t I = 0, E = Scopes.size(); I != E; ++I) {
        if (I != 0)
          Inc->push();
        for (TermRef T : Scopes[I])
          Inc->add(translate(T));
      }
    }
    applyTimeout(*Inc, effectiveTimeoutMs(TimeoutMs));
    return *Inc;
  }

  void pushScope() {
    Scopes.emplace_back();
    ++ScopeGen;
    ++TheStats.ScopePushes;
    if (Inc) {
      try {
        Inc->push();
      } catch (const z3::exception &) {
        dropInc();
      }
    }
    TraceRecorder::global().instant("solver.scope", "push", "depth",
                                    static_cast<int64_t>(Scopes.size() - 1));
  }

  void popScope() {
    if (Scopes.size() <= 1)
      return;
    Scopes.pop_back();
    ++ScopeGen;
    ++TheStats.ScopePops;
    if (Inc) {
      try {
        Inc->pop(1);
      } catch (const z3::exception &) {
        dropInc();
      }
    }
    TraceRecorder::global().instant("solver.scope", "pop", "depth",
                                    static_cast<int64_t>(Scopes.size() - 1));
  }

  void assertScoped(TermRef Formula) {
    Scopes.back().push_back(Formula);
    ++ScopeGen;
    if (Inc) {
      try {
        Inc->add(translate(Formula));
      } catch (const z3::exception &) {
        dropInc();
      }
    }
  }

  /// The incremental path of checkSatAssuming: stack live in the backend,
  /// formula under an ephemeral frame, assumptions as check-sat literals.
  /// Any backend exception (injected faults included) drops the live
  /// session so the ephemeral frame can never leak into later queries.
  SatResult checkSatAssumingInc(const std::vector<TermRef> &Assumptions,
                                TermRef Formula) {
    try {
      bool Hot = Inc != nullptr;
      z3::solver &S = ensureInc();
      if (Hot)
        ++TheStats.IncrementalHits;
      TheStats.AssumptionLiterals += Assumptions.size();
      bool Ephemeral = Formula != nullptr;
      if (Ephemeral) {
        S.push();
        try {
          S.add(translate(Formula));
          z3::expr_vector As(Ctx);
          for (TermRef A : Assumptions)
            As.push_back(translate(A));
          SatResult R = toSatResult(check(S, &As, /*IncrementalQuery=*/true));
          S.pop();
          return R;
        } catch (const z3::exception &) {
          dropInc();
          throw;
        }
      }
      z3::expr_vector As(Ctx);
      for (TermRef A : Assumptions)
        As.push_back(translate(A));
      return toSatResult(check(S, &As, /*IncrementalQuery=*/true));
    } catch (const z3::exception &) {
      dropInc();
      LastUnknown = UnknownCause::Exception;
      return SatResult::Unknown;
    }
  }

  /// Decides the \p Pending formulas (indices into \p Formulas) in one
  /// backend session under selector literals. Members are variable-
  /// disjointly renamed, so "all selected members together" is satisfiable
  /// iff each is; an unsat answer's core names the candidates that are
  /// individually unsat, which are then settled with single-selector
  /// checks. Members left unresolved (Unknown, round cap) stay unmarked in
  /// \p Resolved for the caller's one-shot fallback.
  void checkSatBatchImpl(const std::vector<TermRef> &Formulas,
                         const std::vector<size_t> &Pending,
                         std::vector<SatResult> &Out,
                         std::vector<bool> &Resolved) {
    z3::solver S = makeSolver();
    std::vector<z3::expr> Sels;
    Sels.reserve(Pending.size());
    for (size_t J = 0; J != Pending.size(); ++J) {
      VarTagScope Tag(*this, static_cast<unsigned>(J + 1));
      z3::expr Member = translate(Formulas[Pending[J]]);
      z3::expr Sel = Ctx.constant(
          ("sel_b" + std::to_string(J)).c_str(), Ctx.bool_sort());
      S.add(z3::implies(Sel, Member));
      Sels.push_back(Sel);
    }
    auto Settle = [&](size_t J, SatResult R) {
      Out[Pending[J]] = R;
      Resolved[J] = true;
      SatCache.insert(Formulas[Pending[J]], R);
    };
    std::vector<size_t> Live(Pending.size());
    for (size_t J = 0; J != Live.size(); ++J)
      Live[J] = J;
    const unsigned MaxRounds = 8;
    for (unsigned Round = 0; Round != MaxRounds && !Live.empty(); ++Round) {
      z3::expr_vector As(Ctx);
      for (size_t J : Live)
        As.push_back(Sels[J]);
      z3::check_result R = check(S, &As, /*IncrementalQuery=*/true);
      if (R == z3::sat) {
        for (size_t J : Live)
          Settle(J, SatResult::Sat);
        return;
      }
      if (R != z3::unsat)
        return; // Unknown: the one-shot fallback decides the rest.
      std::unordered_set<unsigned> CoreIds;
      z3::expr_vector Core = S.unsat_core();
      for (unsigned C = 0, E = Core.size(); C != E; ++C)
        CoreIds.insert(Core[C].id());
      std::vector<size_t> Next;
      bool AnySuspect = false;
      for (size_t J : Live) {
        if (!CoreIds.count(Sels[J].id())) {
          Next.push_back(J);
          continue;
        }
        // A core member proves only that the *conjunction* of core members
        // is unsat; with disjoint variables at least one of them is
        // individually unsat, but each needs its own verdict.
        AnySuspect = true;
        z3::expr_vector One(Ctx);
        One.push_back(Sels[J]);
        z3::check_result RJ = check(S, &One, /*IncrementalQuery=*/true);
        if (RJ == z3::sat)
          Settle(J, SatResult::Sat);
        else if (RJ == z3::unsat)
          Settle(J, SatResult::Unsat);
        // Unknown: fall back individually.
      }
      if (!AnySuspect)
        return; // Degenerate (empty) core; bail out to the fallback.
      Live = std::move(Next);
    }
  }

  Value valueFromModelExpr(const z3::expr &E, const Type &Ty) {
    if (Ty.isBool())
      return Value::boolVal(E.is_true());
    if (Ty.isInt()) {
      int64_t V = 0;
      E.is_numeral_i64(V);
      return Value::intVal(V);
    }
    uint64_t V = 0;
    E.is_numeral_u64(V);
    return Value::bitVecVal(V, Ty.width());
  }

  // -- Quantifier elimination ------------------------------------------------

  /// Collects the types of variables occurring in \p T.
  std::map<unsigned, Type> varTypes(TermRef T) {
    std::map<unsigned, Type> Types;
    std::unordered_set<TermRef> Visited;
    auto Go = [&](auto &&Self, TermRef Node) -> void {
      if (!Visited.insert(Node).second)
        return;
      if (Node->isVar())
        Types.emplace(Node->varIndex(), Node->type());
      for (TermRef C : Node->children())
        Self(Self, C);
    };
    Go(Go, Factory.inlineCalls(T));
    return Types;
  }

  Result<TermRef> eliminateExists(TermRef Phi, unsigned NumEliminate) {
    ++TheStats.QeCalls;
    std::map<unsigned, Type> Types = varTypes(Phi);
    z3::expr Body = translate(Phi);
    z3::expr_vector Bound(Ctx);
    for (const auto &[Index, Ty] : Types)
      if (Index < NumEliminate)
        Bound.push_back(varExpr(Index, Ty));
    z3::expr Quantified =
        Bound.empty() ? Body : z3::exists(Bound, Body);

    const char *Tactics[] = {"qe_lite", "qe", "qe2"};
    for (const char *Name : Tactics) {
      z3::expr Eliminated(Ctx);
      try {
        z3::tactic T = z3::try_for(
            z3::tactic(Ctx, Name) & z3::tactic(Ctx, "simplify"),
            TimeoutMs ? TimeoutMs : 60000);
        z3::goal G(Ctx);
        G.add(Quantified);
        z3::apply_result R = T(G);
        if (R.size() == 0) {
          Eliminated = Ctx.bool_val(false);
        } else {
          z3::expr_vector Goals(Ctx);
          for (unsigned I = 0, N = R.size(); I != N; ++I)
            Goals.push_back(R[I].as_expr());
          Eliminated = Goals.size() == 1 ? Goals[0] : z3::mk_or(Goals);
        }
      } catch (const z3::exception &) {
        continue; // Tactic failed or timed out; try the next one.
      }
      if (hasQuantifier(Eliminated))
        continue;
      Result<TermRef> Back = backTranslate(Eliminated);
      if (!Back)
        continue;
      return shiftDown(*Back, NumEliminate);
    }
    ++TheStats.QeFallbacks;
    return Status::error("quantifier elimination failed");
  }

  /// Re-indexes Var(i) to Var(i - Delta). No variable below Delta may occur.
  Result<TermRef> shiftDown(TermRef T, unsigned Delta) {
    if (Delta == 0)
      return T;
    std::map<unsigned, Type> Types = varTypes(T);
    if (Types.empty())
      return T;
    unsigned MaxIndex = Types.rbegin()->first;
    for (const auto &[Index, Ty] : Types) {
      (void)Ty;
      if (Index < Delta)
        return Status::error("eliminated variable survived QE");
    }
    std::vector<TermRef> Replacements(MaxIndex + 1, nullptr);
    for (const auto &[Index, Ty] : Types)
      Replacements[Index] = Factory.mkVar(Index - Delta, Ty);
    return Factory.substitute(T, Replacements);
  }

  // -- Image predicates -----------------------------------------------------

  /// Guard /\ /\_j y_j = f_j(x), with y_j mapped to Var(NumInputs + j).
  TermRef imageFormula(const ImagePredicate &P) {
    std::vector<TermRef> Conjuncts{P.Guard};
    for (unsigned J = 0, E = P.arity(); J != E; ++J) {
      TermRef Y = Factory.mkVar(P.NumInputs + J, P.Outputs[J]->type());
      Conjuncts.push_back(Factory.mkEq(Y, P.Outputs[J]));
    }
    return Factory.mkAnd(std::move(Conjuncts));
  }

  /// forall x. not (Guard /\ /\_j y_j = f_j(x)), over free y_j.
  z3::expr negatedImage(const ImagePredicate &P) {
    z3::expr Body = translate(imageFormula(P));
    std::map<unsigned, Type> Types = varTypes(P.Guard);
    for (TermRef Out : P.Outputs)
      for (const auto &[Index, Ty] : varTypes(Out))
        Types.emplace(Index, Ty);
    z3::expr_vector Bound(Ctx);
    for (const auto &[Index, Ty] : Types)
      if (Index < P.NumInputs)
        Bound.push_back(varExpr(Index, Ty));
    return Bound.empty() ? !Body : z3::forall(Bound, !Body);
  }

  Result<TermRef> project(const ImagePredicate &P, unsigned I,
                          bool AllowHull) {
    assert(I < P.arity() && "projection index out of range");
    ProjKey Key{P.Guard, P.Outputs, P.NumInputs, I, AllowHull};
    if (const TermRef *Cached = ProjCache.find(Key))
      return *Cached;
    Result<TermRef> R = projectUncached(P, I, AllowHull);
    if (R)
      ProjCache.insert(Key, *R);
    return R;
  }

  Result<TermRef> projectUncached(const ImagePredicate &P, unsigned I,
                                  bool AllowHull) {
    const Type &OutTy = P.Outputs[I]->type();
    // Bit-vectors: exact model enumeration first. It beats quantifier
    // elimination both in speed and in the readability of the result
    // (coalesced intervals instead of Z3's pointwise disjunctions), and is
    // exhaustive for narrow widths; for wide ones a cap bails out to the
    // strategies below.
    if (OutTy.isBitVec()) {
      unsigned Cap = OutTy.width() <= 9 ? 0 /*unbounded*/ : 600;
      Result<TermRef> Enumerated = enumerateBvImage(P, I, Cap);
      if (Enumerated || OutTy.width() <= 9)
        return Enumerated;
    }
    if (OutTy.isBitVec()) {
      // Z3's qe tactics rarely finish on wide bit-vector images in useful
      // time (and on narrow ones enumeration already won), so bit-vectors
      // go straight to the dedicated strategies.
      // Over-approximating [min, max] hull via binary search — sound where
      // the caller validates downstream (the ambiguity check does). Purely
      // quantifier-free queries, so it always terminates quickly.
      if (AllowHull)
        return bvImageHull(P, I);
      // Exact interval learning with one-alternation containment queries.
      return learnUnaryBvImage(P, I);
    }
    // Integers: real quantifier elimination on
    //   exists x . Guard /\ y = f_I(x)      (y at index NumInputs).
    TermRef Y = Factory.mkVar(P.NumInputs, OutTy);
    TermRef Phi = Factory.mkAnd(P.Guard, Factory.mkEq(Y, P.Outputs[I]));
    return eliminateExists(Phi, P.NumInputs);
  }

  /// Exact image by model enumeration; \p Cap = 0 means the full domain
  /// (only for widths <= 9). Fails when the cap is exceeded.
  Result<TermRef> enumerateBvImage(const ImagePredicate &P, unsigned I,
                                   unsigned Cap) {
    const unsigned Width = P.Outputs[I]->type().width();
    z3::expr Y = Ctx.constant("img_y", Ctx.bv_sort(Width));
    z3::expr Member = translate(P.Guard) && Y == translate(P.Outputs[I]);
    z3::solver S = makeSolver();
    S.add(Member);
    std::vector<uint64_t> Values;
    unsigned Limit = Cap == 0 ? (1u << Width) + 1 : Cap;
    while (Values.size() < Limit) {
      z3::check_result CR = check(S);
      if (CR == z3::unsat)
        break;
      if (CR != z3::sat)
        return unknownStatus("image enumeration");
      uint64_t V = 0;
      S.get_model().eval(Y, true).is_numeral_u64(V);
      Values.push_back(V);
      S.add(Y != Ctx.bv_val(V, Width));
    }
    if (Values.size() >= Limit)
      return Status::error("image enumeration: cap exceeded");
    std::sort(Values.begin(), Values.end());
    std::vector<Interval> Runs;
    for (uint64_t V : Values) {
      if (!Runs.empty() && Runs.back().Hi + 1 == V)
        Runs.back().Hi = V;
      else
        Runs.push_back({V, V});
    }
    return intervalsToTerm(Runs, Width);
  }

  /// The [min, max] hull of the image, by binary search with
  /// quantifier-free queries only. Over-approximates fragmented images.
  Result<TermRef> bvImageHull(const ImagePredicate &P, unsigned I) {
    const unsigned Width = P.Outputs[I]->type().width();
    const uint64_t Max = Value::maskOf(Width);
    z3::expr Y = Ctx.constant("img_y", Ctx.bv_sort(Width));
    z3::expr Member = translate(P.Guard) && Y == translate(P.Outputs[I]);
    // With incremental sessions on, the Member core is asserted once into a
    // private solver and every binary-search probe runs as a push/pop delta
    // against it, letting the backend keep its lemmas; off, each probe
    // re-sends Member through a fresh solver (the seed behavior).
    std::optional<z3::solver> Probe;
    if (Control.Incremental) {
      Probe.emplace(Ctx);
      applyTimeout(*Probe, effectiveTimeoutMs(TimeoutMs));
      Probe->add(Member);
    }
    auto ProbeSat = [&](const z3::expr &Q, const char *What) -> Result<bool> {
      if (!Probe)
        return isSatExpr(Member && Q, What);
      Probe->push();
      Probe->add(Q);
      z3::check_result CR = check(*Probe, nullptr, /*IncrementalQuery=*/true);
      Probe->pop();
      if (CR == z3::sat)
        return true;
      if (CR == z3::unsat)
        return false;
      return unknownStatus(std::string("solver query for ") + What);
    };
    Result<bool> Any =
        Probe ? [&]() -> Result<bool> {
          z3::check_result CR =
              check(*Probe, nullptr, /*IncrementalQuery=*/true);
          if (CR == z3::sat)
            return true;
          if (CR == z3::unsat)
            return false;
          return unknownStatus("solver query for image hull seed");
        }()
              : isSatExpr(Member, "image hull seed");
    if (!Any)
      return Any.status();
    if (!*Any)
      return Factory.mkFalse();
    // Largest member: binary search on "exists a member >= m".
    auto Bound = [&](bool FindMax) -> Result<uint64_t> {
      uint64_t Lo = 0, Hi = Max;
      while (Lo < Hi) {
        uint64_t Mid = FindMax ? Lo + (Hi - Lo + 1) / 2 : Lo + (Hi - Lo) / 2;
        z3::expr Q = FindMax ? z3::uge(Y, Ctx.bv_val(Mid, Width))
                             : z3::ule(Y, Ctx.bv_val(Mid, Width));
        Result<bool> Sat = ProbeSat(Q, "image hull bound");
        if (!Sat)
          return Sat.status();
        if (FindMax) {
          if (*Sat)
            Lo = Mid;
          else
            Hi = Mid - 1;
        } else {
          if (*Sat)
            Hi = Mid;
          else
            Lo = Mid + 1;
        }
      }
      return Lo;
    };
    Result<uint64_t> HullMax = Bound(true);
    if (!HullMax)
      return HullMax.status();
    Result<uint64_t> HullMin = Bound(false);
    if (!HullMin)
      return HullMin.status();
    return intervalsToTerm({{*HullMin, *HullMax}}, Width);
  }

  /// Interval-learning fallback: computes the set of feasible values of
  /// f_I(x) under Guard as a union of maximal closed intervals, verified
  /// hole-free, and returns it as a term over Var(0).
  Result<TermRef> learnUnaryBvImage(const ImagePredicate &P, unsigned I) {
    const unsigned Width = P.Outputs[I]->type().width();
    const uint64_t Max = Value::maskOf(Width);
    z3::expr Y = Ctx.constant("img_y", Ctx.bv_sort(Width));
    z3::expr Member =
        translate(P.Guard) && Y == translate(P.Outputs[I]);
    // The quantified no-witness core is loop-invariant; build it once.
    z3::expr NoWitness = [&] {
      std::map<unsigned, Type> Types = varTypes(P.Guard);
      for (const auto &[Index, Ty] : varTypes(P.Outputs[I]))
        Types.emplace(Index, Ty);
      z3::expr_vector Bound(Ctx);
      for (const auto &[Index, Ty] : Types)
        if (Index < P.NumInputs)
          Bound.push_back(varExpr(Index, Ty));
      return Bound.empty() ? !Member : z3::forall(Bound, !Member);
    }();

    // Incremental probing (SolverControl::Incremental): the loop discharges
    // hundreds of queries that differ only in the concrete Y bounds, so the
    // Member / NoWitness cores are asserted once into private solvers and
    // every probe runs as a push/pop delta. Off, each probe builds a fresh
    // solver exactly as before.
    std::optional<z3::solver> MemberS, ContS, SeedS;
    if (Control.Incremental) {
      MemberS.emplace(Ctx);
      MemberS->add(Member);
      applyTimeout(*MemberS, effectiveTimeoutMs(TimeoutMs));
      ContS.emplace(Ctx);
      ContS->add(NoWitness);
      applyTimeout(*ContS, effectiveTimeoutMs(TimeoutMs));
      SeedS.emplace(Ctx);
      SeedS->add(Member);
      applyTimeout(*SeedS, effectiveTimeoutMs(TimeoutMs));
    }
    auto ProbeDelta = [&](z3::solver &S, const z3::expr &Q) {
      S.push();
      S.add(Q);
      z3::check_result CR = check(S, nullptr, /*IncrementalQuery=*/true);
      S.pop();
      return toSatResult(CR);
    };

    // Membership of a single concrete value.
    auto IsMember = [&](uint64_t V) -> Result<bool> {
      z3::expr Pin = Y == Ctx.bv_val(V, Width);
      SatResult R = MemberS ? ProbeDelta(*MemberS, Pin)
                            : checkExpr(Member && Pin);
      if (R == SatResult::Unknown)
        return unknownStatus("solver query for interval-learning membership");
      return R == SatResult::Sat;
    };
    // Whole-interval containment: no hole in [Lo, Hi]. One quantifier
    // alternation; falls back to pointwise scanning on unknown.
    auto IntervalContained = [&](uint64_t Lo, uint64_t Hi) -> Result<bool> {
      z3::expr Bounds = z3::uge(Y, Ctx.bv_val(Lo, Width)) &&
                        z3::ule(Y, Ctx.bv_val(Hi, Width));
      SatResult R = ContS ? ProbeDelta(*ContS, Bounds)
                          : checkExpr(Bounds && NoWitness);
      if (R == SatResult::Unknown) {
        // Pointwise fallback; only viable for short intervals.
        if (Hi - Lo > 4096)
          return Status::error("interval-learning: containment unknown");
        for (uint64_t V = Lo; V <= Hi; ++V) {
          Result<bool> M = IsMember(V);
          if (!M)
            return M;
          if (!*M)
            return false;
          if (V == Hi)
            break;
        }
        return true;
      }
      return R == SatResult::Unsat;
    };

    std::vector<Interval> Intervals;
    auto InHypothesis = [&](const z3::expr &E) {
      z3::expr Any = Ctx.bool_val(false);
      for (const Interval &Iv : Intervals)
        Any = Any || (z3::uge(E, Ctx.bv_val(Iv.Lo, Width)) &&
                      z3::ule(E, Ctx.bv_val(Iv.Hi, Width)));
      return Any;
    };

    const unsigned MaxIntervals = 256;
    while (Intervals.size() <= MaxIntervals) {
      // Find a member outside the hypothesis. The learned result is
      // seed-order independent — each round discovers one maximal run of
      // the image and the final union is canonical — so the incremental
      // and one-shot paths converge on the same term.
      z3::check_result CR;
      uint64_t Seed = 0;
      if (SeedS) {
        SeedS->push();
        SeedS->add(!InHypothesis(Y));
        CR = check(*SeedS, nullptr, /*IncrementalQuery=*/true);
        if (CR == z3::sat)
          SeedS->get_model().eval(Y, true).is_numeral_u64(Seed);
        SeedS->pop();
      } else {
        z3::expr Q = Member && !InHypothesis(Y);
        z3::solver S = makeSolver();
        S.add(Q);
        CR = check(S);
        if (CR == z3::sat)
          S.get_model().eval(Y, true).is_numeral_u64(Seed);
      }
      if (CR == z3::unsat)
        break; // Hypothesis covers the image exactly.
      if (CR != z3::sat)
        return unknownStatus("interval-learning seed query");

      // Grow [Seed, Seed] to a maximal contained interval by binary search.
      uint64_t Lo = Seed, Hi = Seed;
      uint64_t Step = 1;
      // Exponential probe upward, then binary refine.
      while (Hi < Max) {
        uint64_t Probe = Hi + std::min(Step, Max - Hi);
        Result<bool> C = IntervalContained(Hi + 1, Probe);
        if (!C)
          return C.status();
        if (!*C)
          break;
        Hi = Probe;
        Step *= 2;
      }
      if (Hi < Max) {
        uint64_t BadHigh = std::min(Hi + Step, Max);
        // Invariant: [Seed, Hi] contained; (Hi, BadHigh] has a hole.
        while (Hi + 1 < BadHigh) {
          uint64_t Mid = Hi + (BadHigh - Hi) / 2;
          Result<bool> C = IntervalContained(Hi + 1, Mid);
          if (!C)
            return C.status();
          if (*C)
            Hi = Mid;
          else
            BadHigh = Mid;
        }
      }
      Step = 1;
      while (Lo > 0) {
        uint64_t Probe = Lo - std::min(Step, Lo);
        Result<bool> C = IntervalContained(Probe, Lo - 1);
        if (!C)
          return C.status();
        if (!*C)
          break;
        Lo = Probe;
        Step *= 2;
      }
      if (Lo > 0) {
        uint64_t BadLow = Lo >= Step ? Lo - Step : 0;
        while (BadLow + 1 < Lo) {
          uint64_t Mid = BadLow + (Lo - BadLow) / 2;
          Result<bool> C = IntervalContained(Mid, Lo - 1);
          if (!C)
            return C.status();
          if (*C)
            Lo = Mid;
          else
            BadLow = Mid;
        }
      }
      Intervals.push_back({Lo, Hi});
    }
    if (Intervals.size() > MaxIntervals)
      return Status::error("interval-learning: image too fragmented");

    // Coalesce adjacent intervals and emit the predicate over Var(0).
    std::sort(Intervals.begin(), Intervals.end(),
              [](const Interval &A, const Interval &B) { return A.Lo < B.Lo; });
    std::vector<Interval> Merged;
    for (const Interval &Iv : Intervals) {
      if (!Merged.empty() && Iv.Lo <= Merged.back().Hi + 1 &&
          Merged.back().Hi >= Iv.Lo - 1)
        Merged.back().Hi = std::max(Merged.back().Hi, Iv.Hi);
      else
        Merged.push_back(Iv);
    }
    return intervalsToTerm(Merged, Width);
  }

  /// Emits a sorted, disjoint interval union as a predicate over Var(0).
  TermRef intervalsToTerm(const std::vector<Interval> &Merged,
                          unsigned Width) {
    const uint64_t Max = Value::maskOf(Width);
    TermRef V = Factory.mkVar(0, Type::bitVecTy(Width));
    std::vector<TermRef> Disjuncts;
    for (const Interval &Iv : Merged) {
      if (Iv.Lo == Iv.Hi) {
        Disjuncts.push_back(Factory.mkEq(V, Factory.mkBv(Iv.Lo, Width)));
        continue;
      }
      std::vector<TermRef> Bounds;
      if (Iv.Lo != 0)
        Bounds.push_back(
            Factory.mkBvOp(Op::BvUge, V, Factory.mkBv(Iv.Lo, Width)));
      if (Iv.Hi != Max)
        Bounds.push_back(
            Factory.mkBvOp(Op::BvUle, V, Factory.mkBv(Iv.Hi, Width)));
      Disjuncts.push_back(Factory.mkAnd(std::move(Bounds)));
    }
    return Factory.mkOr(std::move(Disjuncts));
  }

  Result<bool> isCartesian(const ImagePredicate &P) {
    if (P.arity() <= 1)
      return true;
    // psi -> /\ psi_i holds by construction of the projections; Cartesian
    // iff the converse holds: unsat( /\ psi_i(y_i)  /\  not psi(y) ).
    z3::expr Conj = Ctx.bool_val(true);
    for (unsigned I = 0, E = P.arity(); I != E; ++I) {
      Result<TermRef> Psi = project(P, I, /*AllowHull=*/false);
      if (!Psi)
        return Psi.status();
      // psi_I is over Var(0); re-index to the shared y_i = Var(NumInputs+I).
      std::vector<TermRef> Repl{
          Factory.mkVar(P.NumInputs + I, P.Outputs[I]->type())};
      Conj = Conj && translate(Factory.substitute(*Psi, Repl));
    }
    z3::expr Query = Conj && negatedImage(P);
    SatResult R = checkExpr(Query);
    if (R == SatResult::Unknown)
      return unknownStatus("Cartesian check");
    return R == SatResult::Unsat;
  }

  Result<TermRef> imageToTerm(const ImagePredicate &P) {
    if (P.arity() == 0) {
      Result<bool> S = isSatExpr(translate(P.Guard), "empty-output image");
      if (!S)
        return S.status();
      return *S ? Factory.mkTrue() : Factory.mkFalse();
    }
    Result<bool> Cart = isCartesian(P);
    if (Cart && *Cart) {
      std::vector<TermRef> Conjuncts;
      for (unsigned I = 0, E = P.arity(); I != E; ++I) {
        Result<TermRef> Psi = project(P, I, /*AllowHull=*/false);
        if (!Psi)
          return Psi;
        std::vector<TermRef> Repl{Factory.mkVar(I, P.Outputs[I]->type())};
        Conjuncts.push_back(Factory.substitute(*Psi, Repl));
      }
      return Factory.mkAnd(std::move(Conjuncts));
    }
    // Non-Cartesian (or undecided): try to eliminate the inputs directly.
    return eliminateExists(imageFormula(P), P.NumInputs);
  }
};

// ---------------------------------------------------------------------------
// Public forwarding layer: every method catches z3::exception and converts it
// into a Status, keeping the no-exceptions discipline for callers.
// ---------------------------------------------------------------------------

Solver::Solver(TermFactory &Factory)
    : TheImpl(std::make_unique<Impl>(Factory)) {}

Solver::~Solver() = default;

void Solver::setTimeoutMs(unsigned Milliseconds) {
  TheImpl->TimeoutMs = Milliseconds;
}

unsigned Solver::timeoutMs() const { return TheImpl->TimeoutMs; }

void Solver::setControl(const SolverControl &Control) {
  TheImpl->Control = Control;
}

const SolverControl &Solver::control() const { return TheImpl->Control; }

const CancellationToken &Solver::cancellation() const {
  return TheImpl->Control.Cancel;
}

Status Solver::unknownStatus(const std::string &What) const {
  return TheImpl->unknownStatus(What);
}

SatResult Solver::checkSat(TermRef Formula) {
  // isValid and equivalentUnder funnel through here (as sat-of-negation),
  // so this one table memoizes all three entry points.
  if (const SatResult *Cached = TheImpl->SatCache.find(Formula))
    return *Cached;
  SatResult R;
  try {
    R = TheImpl->checkExpr(TheImpl->translate(Formula));
  } catch (const z3::exception &) {
    R = SatResult::Unknown;
  }
  if (R != SatResult::Unknown)
    TheImpl->SatCache.insert(Formula, R);
  return R;
}

void Solver::push() { TheImpl->pushScope(); }

void Solver::pop() { TheImpl->popScope(); }

unsigned Solver::scopeDepth() const {
  return static_cast<unsigned>(TheImpl->Scopes.size() - 1);
}

uint64_t Solver::scopeGeneration() const { return TheImpl->ScopeGen; }

void Solver::assertFormula(TermRef Formula) {
  TheImpl->assertScoped(Formula);
}

SatResult Solver::checkSatAssuming(const std::vector<TermRef> &Assumptions,
                                   TermRef Formula) {
  Impl &I = *TheImpl;
  if (!I.Control.Incremental) {
    // One-shot fallback: the scoped query is just the conjunction of the
    // asserted stack, the extra formula, and the assumptions, routed
    // through checkSat so it shares the global memo and exception
    // handling. Verdicts match the incremental path by construction.
    std::vector<TermRef> Conj;
    for (const auto &Frame : I.Scopes)
      Conj.insert(Conj.end(), Frame.begin(), Frame.end());
    if (Formula)
      Conj.push_back(Formula);
    Conj.insert(Conj.end(), Assumptions.begin(), Assumptions.end());
    return checkSat(I.Factory.mkAnd(std::move(Conj)));
  }
  ScopedQueryKey Key{I.ScopeGen, Formula, Assumptions};
  if (const SatResult *Cached = I.ScopedCache.find(Key))
    return *Cached;
  SatResult R = I.checkSatAssumingInc(Assumptions, Formula);
  if (R != SatResult::Unknown)
    I.ScopedCache.insert(Key, R);
  return R;
}

std::vector<SatResult>
Solver::checkSatBatch(const std::vector<TermRef> &Formulas) {
  Impl &I = *TheImpl;
  std::vector<SatResult> Out(Formulas.size(), SatResult::Unknown);
  std::vector<size_t> Pending;
  for (size_t K = 0; K != Formulas.size(); ++K) {
    if (const SatResult *Cached = I.SatCache.find(Formulas[K]))
      Out[K] = *Cached;
    else
      Pending.push_back(K);
  }
  if (Pending.empty())
    return Out;
  if (!I.Control.Incremental || Pending.size() < 2) {
    for (size_t K : Pending)
      Out[K] = checkSat(Formulas[K]);
    return Out;
  }
  ++I.TheStats.AssumptionBatches;
  I.TheStats.AssumptionLiterals += Pending.size();
  std::vector<bool> Resolved(Pending.size(), false);
  try {
    I.checkSatBatchImpl(Formulas, Pending, Out, Resolved);
  } catch (const z3::exception &) {
    // Batch solver died (injected fault, backend hiccup); the per-formula
    // fallback below settles whatever is left.
  }
  for (size_t J = 0; J != Pending.size(); ++J)
    if (!Resolved[J])
      Out[Pending[J]] = checkSat(Formulas[Pending[J]]);
  return Out;
}

void Solver::setSatCacheCapacity(size_t MaxEntries) {
  TheImpl->SatCache.setCapacity(MaxEntries);
  // Model and projection entries are whole value vectors / terms, so their
  // tables follow the sat cap from below.
  size_t Heavy = std::min<size_t>(MaxEntries, 1u << 16);
  TheImpl->ModelCache.setCapacity(Heavy);
  TheImpl->ProjCache.setCapacity(Heavy);
}

size_t Solver::satCacheCapacity() const {
  return TheImpl->SatCache.capacity();
}

Result<bool> Solver::isSat(TermRef Formula) {
  switch (checkSat(Formula)) {
  case SatResult::Sat:
    return true;
  case SatResult::Unsat:
    return false;
  default:
    return TheImpl->unknownStatus("isSat of " + printTerm(Formula));
  }
}

Result<bool> Solver::isValid(TermRef Formula) {
  Result<bool> NegSat = isSat(TheImpl->Factory.mkNot(Formula));
  if (!NegSat)
    return NegSat;
  return !*NegSat;
}

Result<std::vector<Value>>
Solver::getModel(TermRef Formula, const std::vector<Type> &VarTypes) {
  // Each model query runs on a fresh z3 solver, so the answer depends only
  // on (formula, requested types) and successful answers are memoizable.
  ModelKey Key{Formula, VarTypes};
  if (const std::vector<Value> *Cached = TheImpl->ModelCache.find(Key))
    return *Cached;
  try {
    z3::solver S = TheImpl->makeSolver();
    S.add(TheImpl->translate(Formula));
    z3::check_result R = TheImpl->check(S);
    if (R == z3::unsat)
      return Status::error("getModel: formula is unsatisfiable");
    if (R != z3::sat)
      return TheImpl->unknownStatus("getModel");
    z3::model M = S.get_model();
    std::vector<Value> Values;
    Values.reserve(VarTypes.size());
    for (unsigned I = 0, E = VarTypes.size(); I != E; ++I) {
      z3::expr V = M.eval(TheImpl->varExpr(I, VarTypes[I]), true);
      Values.push_back(TheImpl->valueFromModelExpr(V, VarTypes[I]));
    }
    TheImpl->ModelCache.insert(Key, Values);
    return Values;
  } catch (const z3::exception &Ex) {
    return Status::solverError(std::string("getModel: ") + Ex.msg());
  }
}

Result<bool> Solver::equivalentUnder(TermRef Guard, TermRef F, TermRef G) {
  TermFactory &Factory = TheImpl->Factory;
  assert(F->type() == G->type() && "equivalence over mismatched types");
  TermRef Same = F->type().isBool() ? Factory.mkIff(F, G) : Factory.mkEq(F, G);
  return isValid(Factory.mkImplies(Guard, Same));
}

Result<TermRef> Solver::eliminateExists(TermRef Phi, unsigned NumEliminate) {
  try {
    return TheImpl->eliminateExists(Phi, NumEliminate);
  } catch (const z3::exception &Ex) {
    return Status::solverError(std::string("eliminateExists: ") + Ex.msg());
  }
}

Result<bool> Solver::imageIsSat(const ImagePredicate &P) {
  try {
    return TheImpl->isSatExpr(TheImpl->translate(P.Guard), "image guard");
  } catch (const z3::exception &Ex) {
    return Status::solverError(std::string("imageIsSat: ") + Ex.msg());
  }
}

Result<std::vector<Value>> Solver::imageModel(const ImagePredicate &P) {
  try {
    std::vector<Type> Types;
    for (unsigned I = 0; I < P.NumInputs; ++I)
      Types.push_back(Type::boolTy()); // Placeholder; overwritten below.
    // Build the model query over the y variables only.
    TermRef Formula = TheImpl->imageFormula(P);
    std::vector<Type> AllTypes(P.NumInputs + P.arity(), Type::boolTy());
    for (const auto &[Index, Ty] : TheImpl->varTypes(Formula))
      if (Index < AllTypes.size())
        AllTypes[Index] = Ty;
    Result<std::vector<Value>> All = getModel(Formula, AllTypes);
    if (!All)
      return All;
    return std::vector<Value>(All->begin() + P.NumInputs, All->end());
  } catch (const z3::exception &Ex) {
    return Status::solverError(std::string("imageModel: ") + Ex.msg());
  }
}

Result<TermRef> Solver::project(const ImagePredicate &P, unsigned I,
                                bool AllowHull) {
  try {
    return TheImpl->project(P, I, AllowHull);
  } catch (const z3::exception &Ex) {
    return Status::solverError(std::string("project: ") + Ex.msg());
  }
}

Result<bool> Solver::isCartesian(const ImagePredicate &P) {
  try {
    return TheImpl->isCartesian(P);
  } catch (const z3::exception &Ex) {
    return Status::solverError(std::string("isCartesian: ") + Ex.msg());
  }
}

Result<TermRef> Solver::imageToTerm(const ImagePredicate &P) {
  try {
    return TheImpl->imageToTerm(P);
  } catch (const z3::exception &Ex) {
    return Status::solverError(std::string("imageToTerm: ") + Ex.msg());
  }
}

const Solver::Stats &Solver::stats() const {
  // The cache counters live inside the QueryCache instances; mirror them
  // into the Stats snapshot on read so callers see one flat struct.
  Stats &S = TheImpl->TheStats;
  S.CacheHits = TheImpl->SatCache.hits();
  S.CacheMisses = TheImpl->SatCache.misses();
  S.CacheEvictions = TheImpl->SatCache.evictions();
  S.ModelCacheHits = TheImpl->ModelCache.hits();
  S.ModelCacheMisses = TheImpl->ModelCache.misses();
  S.ModelCacheEvictions = TheImpl->ModelCache.evictions();
  S.ProjCacheHits = TheImpl->ProjCache.hits();
  S.ProjCacheMisses = TheImpl->ProjCache.misses();
  S.ProjCacheEvictions = TheImpl->ProjCache.evictions();
  S.ScopedCacheHits = TheImpl->ScopedCache.hits();
  S.ScopedCacheMisses = TheImpl->ScopedCache.misses();
  S.ScopedCacheEvictions = TheImpl->ScopedCache.evictions();
  return S;
}

TermFactory &Solver::factory() { return TheImpl->Factory; }
