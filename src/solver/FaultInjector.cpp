//===- solver/FaultInjector.cpp - Fault-plan spec parsing -----------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "solver/FaultInjector.h"

#include <atomic>
#include <cctype>

namespace genic {

/// Process-global crash arm switch; see setCrashFaultsEnabled. Atomic so a
/// worker can arm it before any solver thread exists without formal races.
static std::atomic<bool> CrashFaultsArmed{false};

void setCrashFaultsEnabled(bool Enabled) {
  CrashFaultsArmed.store(Enabled, std::memory_order_relaxed);
}

bool crashFaultsEnabled() {
  return CrashFaultsArmed.load(std::memory_order_relaxed);
}

static bool parseU64(const std::string &S, size_t Begin, size_t End,
                     uint64_t &Out) {
  if (Begin >= End)
    return false;
  Out = 0;
  for (size_t I = Begin; I != End; ++I) {
    if (!std::isdigit(static_cast<unsigned char>(S[I])))
      return false;
    Out = Out * 10 + uint64_t(S[I] - '0');
  }
  return true;
}

Result<FaultPlan> parseFaultPlan(const std::string &Spec) {
  auto Bad = [&](const char *Why) {
    return Status::error("bad fault-inject spec '" + Spec + "': " + Why +
                         " (expected kind@N[xC][:scope], e.g. unknown@5, "
                         "throw@3x2:shared, unknown@1x0:workers)");
  };

  FaultPlan Plan;
  size_t At = Spec.find('@');
  if (At == std::string::npos)
    return Bad("missing '@'");

  std::string Kind = Spec.substr(0, At);
  if (Kind == "unknown")
    Plan.FaultKind = FaultPlan::Kind::Unknown;
  else if (Kind == "throw")
    Plan.FaultKind = FaultPlan::Kind::Throw;
  else if (Kind == "crash")
    Plan.FaultKind = FaultPlan::Kind::Crash;
  else
    return Bad("kind must be 'unknown', 'throw', or 'crash'");

  size_t End = Spec.size();
  size_t Colon = Spec.find(':', At + 1);
  if (Colon != std::string::npos) {
    std::string Scope = Spec.substr(Colon + 1);
    if (Scope == "all")
      Plan.FaultScope = FaultPlan::Scope::All;
    else if (Scope == "shared")
      Plan.FaultScope = FaultPlan::Scope::Shared;
    else if (Scope == "workers")
      Plan.FaultScope = FaultPlan::Scope::Workers;
    else
      return Bad("scope must be 'all', 'shared', or 'workers'");
    End = Colon;
  }

  size_t X = Spec.find('x', At + 1);
  if (X != std::string::npos && X < End) {
    if (!parseU64(Spec, X + 1, End, Plan.Count))
      return Bad("count after 'x' must be a number");
    End = X;
  }

  if (!parseU64(Spec, At + 1, End, Plan.AtQuery) || Plan.AtQuery == 0)
    return Bad("query ordinal after '@' must be a positive number");

  return Plan;
}

std::string describeFaultPlan(const FaultPlan &Plan) {
  if (!Plan.enabled())
    return "-";
  std::string S = Plan.FaultKind == FaultPlan::Kind::Throw    ? "throw"
                  : Plan.FaultKind == FaultPlan::Kind::Crash ? "crash"
                                                             : "unknown";
  S += "@" + std::to_string(Plan.AtQuery);
  if (Plan.Count != 1)
    S += "x" + std::to_string(Plan.Count);
  switch (Plan.FaultScope) {
  case FaultPlan::Scope::All:
    break;
  case FaultPlan::Scope::Shared:
    S += ":shared";
    break;
  case FaultPlan::Scope::Workers:
    S += ":workers";
    break;
  }
  return S;
}

} // namespace genic
