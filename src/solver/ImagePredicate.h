//===- solver/ImagePredicate.h - Quantified output predicates -------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predicate describing the possible outputs of one s-EFT transition
/// (Definition 4.9): for a transition with guard phi(x0..xn-1) and output
/// functions [f0..fk-1], the output automaton's guard is the k-ary predicate
///
///     psi(y0..yk-1)  =  exists x0..xn-1 . phi(x)  /\  /\_j yj = fj(x)
///
/// The term language is quantifier-free, so this existential predicate gets
/// its own representation. The Solver knows how to decide satisfiability of
/// image predicates, project them to unary predicates (quantifier
/// elimination with fallbacks), test whether they are Cartesian (§4.3), and
/// convert them to quantifier-free terms.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_SOLVER_IMAGEPREDICATE_H
#define GENIC_SOLVER_IMAGEPREDICATE_H

#include "term/Term.h"
#include "term/Type.h"

#include <vector>

namespace genic {

/// The symbolic image of a guarded output tuple; see file comment.
///
/// Guard and every output are terms over Var(0..NumInputs-1). Callers are
/// responsible for conjoining auxiliary-function domain predicates into
/// Guard (TermFactory::calleeDomains) so that partiality is explicit.
struct ImagePredicate {
  TermRef Guard = nullptr;
  std::vector<TermRef> Outputs;
  unsigned NumInputs = 0;

  unsigned arity() const { return Outputs.size(); }
};

} // namespace genic

#endif // GENIC_SOLVER_IMAGEPREDICATE_H
