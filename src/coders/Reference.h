//===- coders/Reference.h - Native oracle implementations -----------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Straightforward C++ implementations of the 14 coders of Table 1, used as
/// oracles: the GENIC programs must agree with them symbol-for-symbol, and
/// inverted programs must realize the opposite direction.
///
/// All functions work on symbol vectors (each symbol a zero-extended
/// uint64_t: bytes for the BASE-family and UU, code points / code units for
/// UTF-8 and UTF-16). Decoders (and the partial encoders UTF-8/UTF-16)
/// return std::nullopt on invalid input; the decoders are strict canonical
/// decoders — non-canonical padding bits are rejected, which is what makes
/// the corresponding GENIC decoders injective.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_CODERS_REFERENCE_H
#define GENIC_CODERS_REFERENCE_H

#include <cstdint>
#include <optional>
#include <vector>

namespace genic {

using Symbols = std::vector<uint64_t>;
using MaybeSymbols = std::optional<Symbols>;

MaybeSymbols base64Encode(const Symbols &Bytes);
MaybeSymbols base64Decode(const Symbols &Chars);

/// The §2 "modified BASE64 for XML tokens": 62 -> '.', 63 -> '-', and no
/// padding (a 1-byte leftover emits 2 characters, a 2-byte leftover 3).
MaybeSymbols modifiedBase64Encode(const Symbols &Bytes);
MaybeSymbols modifiedBase64Decode(const Symbols &Chars);

MaybeSymbols base32Encode(const Symbols &Bytes);
MaybeSymbols base32Decode(const Symbols &Chars);

MaybeSymbols base16Encode(const Symbols &Bytes);
MaybeSymbols base16Decode(const Symbols &Chars);

/// UU body encoding (space variant, v + 0x20), without the historical
/// length prefix; leftovers emit length-implied shorter groups.
MaybeSymbols uuEncode(const Symbols &Bytes);
MaybeSymbols uuDecode(const Symbols &Chars);

/// Code points (excluding surrogates, <= 0x10FFFF) <-> UTF-8 bytes. Symbols
/// are 32-bit values on both sides, matching the GENIC programs.
MaybeSymbols utf8Encode(const Symbols &CodePoints);
MaybeSymbols utf8Decode(const Symbols &Bytes);

/// Code points <-> UTF-16 code units (32-bit symbols on both sides).
MaybeSymbols utf16Encode(const Symbols &CodePoints);
MaybeSymbols utf16Decode(const Symbols &Units);

} // namespace genic

#endif // GENIC_CODERS_REFERENCE_H
