//===- coders/Synthetic.h - Synthetic LIA benchmark generators ------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generators for the synthetic linear-integer-arithmetic benchmarks of
/// §7.2:
///
///  - the ST family {S_2, ..., S_18}: program S_k has k+1 states and 2k
///    three-lookahead transitions of the form
///        q_i --x1=0 / [x1, x2+c_i, x3+d_i]--> q_i
///        q_i --x1=1 / [x1, x2+c_i, x3+d_i]--> q_{i+1}
///    (plus an empty finalizer per state), used for the scaling study of
///    Figure 7;
///
///  - a family of randomized deterministic, injective affine transducers
///    (per-state disjoint guard intervals on the first symbol, identity
///    first output), standing in for the paper's 40-program synthetic
///    corpus in the property tests.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_CODERS_SYNTHETIC_H
#define GENIC_CODERS_SYNTHETIC_H

#include <string>

namespace genic {

/// GENIC source of S_k (k >= 1). Entry transformation "S0"; asks for both
/// isInjective and invert.
std::string makeStProgram(unsigned K);

/// GENIC source of a randomized deterministic injective LIA transducer with
/// \p NumStates states (>= 1), derived deterministically from \p Seed.
std::string makeRandomLiaProgram(uint64_t Seed, unsigned NumStates);

} // namespace genic

#endif // GENIC_CODERS_SYNTHETIC_H
