//===- coders/Reference.cpp ------------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "coders/Reference.h"

#include <array>

using namespace genic;

namespace {

constexpr const char *Base64Alphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
constexpr const char *ModBase64Alphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789.-";
constexpr const char *Base32Alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ234567";
constexpr const char *Base16Alphabet = "0123456789ABCDEF";

/// value -> character table; -1 entries for invalid characters.
std::array<int, 256> reverseTable(const char *Alphabet, unsigned Size) {
  std::array<int, 256> T;
  T.fill(-1);
  for (unsigned I = 0; I < Size; ++I)
    T[static_cast<unsigned char>(Alphabet[I])] = static_cast<int>(I);
  return T;
}

/// Generic base-64-style encoder over a 64-character alphabet.
Symbols encode64ish(const Symbols &Bytes, const char *Alphabet,
                    bool Padding) {
  Symbols Out;
  size_t I = 0, N = Bytes.size();
  for (; I + 3 <= N; I += 3) {
    uint64_t X = Bytes[I], Y = Bytes[I + 1], Z = Bytes[I + 2];
    Out.push_back(Alphabet[X >> 2]);
    Out.push_back(Alphabet[((X & 3) << 4) | (Y >> 4)]);
    Out.push_back(Alphabet[((Y & 0xF) << 2) | (Z >> 6)]);
    Out.push_back(Alphabet[Z & 0x3F]);
  }
  size_t Left = N - I;
  if (Left == 1) {
    uint64_t X = Bytes[I];
    Out.push_back(Alphabet[X >> 2]);
    Out.push_back(Alphabet[(X & 3) << 4]);
    if (Padding) {
      Out.push_back('=');
      Out.push_back('=');
    }
  } else if (Left == 2) {
    uint64_t X = Bytes[I], Y = Bytes[I + 1];
    Out.push_back(Alphabet[X >> 2]);
    Out.push_back(Alphabet[((X & 3) << 4) | (Y >> 4)]);
    Out.push_back(Alphabet[(Y & 0xF) << 2]);
    if (Padding)
      Out.push_back('=');
  }
  return Out;
}

MaybeSymbols decode64ish(const Symbols &Chars, const char *Alphabet,
                         bool Padding) {
  static thread_local std::array<int, 256> Table;
  Table = reverseTable(Alphabet, 64);
  auto Digit = [&](uint64_t C) -> int {
    return C < 256 ? Table[C] : -1;
  };
  Symbols Out;
  size_t I = 0, N = Chars.size();
  auto TailLen = [&] { return N - I; };
  while (true) {
    size_t Left = TailLen();
    if (Left == 0)
      return Out;
    if (Padding) {
      if (Left < 4)
        return std::nullopt;
      int A = Digit(Chars[I]), B = Digit(Chars[I + 1]);
      if (A < 0 || B < 0)
        return std::nullopt;
      bool Pad3 = Chars[I + 2] == '=', Pad4 = Chars[I + 3] == '=';
      if (Left == 4 && Pad3 && Pad4) {
        if (B & 0xF)
          return std::nullopt; // Non-canonical.
        Out.push_back((A << 2) | (B >> 4));
        return Out;
      }
      int C = Digit(Chars[I + 2]);
      if (Left == 4 && C >= 0 && Pad4) {
        if (C & 0x3)
          return std::nullopt;
        Out.push_back((A << 2) | (B >> 4));
        Out.push_back(((B & 0xF) << 4) | (C >> 2));
        return Out;
      }
      int D = Digit(Chars[I + 3]);
      if (C < 0 || D < 0)
        return std::nullopt;
      Out.push_back((A << 2) | (B >> 4));
      Out.push_back(((B & 0xF) << 4) | (C >> 2));
      Out.push_back(((C & 0x3) << 6) | D);
      I += 4;
      continue;
    }
    // Unpadded: leftovers of 2 or 3 characters.
    if (Left == 1)
      return std::nullopt;
    int A = Digit(Chars[I]), B = Digit(Chars[I + 1]);
    if (A < 0 || B < 0)
      return std::nullopt;
    if (Left == 2) {
      if (B & 0xF)
        return std::nullopt;
      Out.push_back((A << 2) | (B >> 4));
      return Out;
    }
    int C = Digit(Chars[I + 2]);
    if (C < 0)
      return std::nullopt;
    if (Left == 3) {
      if (C & 0x3)
        return std::nullopt;
      Out.push_back((A << 2) | (B >> 4));
      Out.push_back(((B & 0xF) << 4) | (C >> 2));
      return Out;
    }
    int D = Digit(Chars[I + 3]);
    if (D < 0)
      return std::nullopt;
    Out.push_back((A << 2) | (B >> 4));
    Out.push_back(((B & 0xF) << 4) | (C >> 2));
    Out.push_back(((C & 0x3) << 6) | D);
    I += 4;
  }
}

} // namespace

MaybeSymbols genic::base64Encode(const Symbols &Bytes) {
  return encode64ish(Bytes, Base64Alphabet, /*Padding=*/true);
}
MaybeSymbols genic::base64Decode(const Symbols &Chars) {
  return decode64ish(Chars, Base64Alphabet, /*Padding=*/true);
}
MaybeSymbols genic::modifiedBase64Encode(const Symbols &Bytes) {
  return encode64ish(Bytes, ModBase64Alphabet, /*Padding=*/false);
}
MaybeSymbols genic::modifiedBase64Decode(const Symbols &Chars) {
  return decode64ish(Chars, ModBase64Alphabet, /*Padding=*/false);
}

MaybeSymbols genic::uuEncode(const Symbols &Bytes) {
  // v + 0x20 mapping, no padding characters.
  Symbols Out;
  size_t I = 0, N = Bytes.size();
  auto Put = [&](uint64_t V) { Out.push_back(V + 0x20); };
  for (; I + 3 <= N; I += 3) {
    uint64_t X = Bytes[I], Y = Bytes[I + 1], Z = Bytes[I + 2];
    Put(X >> 2);
    Put(((X & 3) << 4) | (Y >> 4));
    Put(((Y & 0xF) << 2) | (Z >> 6));
    Put(Z & 0x3F);
  }
  size_t Left = N - I;
  if (Left == 1) {
    Put(Bytes[I] >> 2);
    Put((Bytes[I] & 3) << 4);
  } else if (Left == 2) {
    Put(Bytes[I] >> 2);
    Put(((Bytes[I] & 3) << 4) | (Bytes[I + 1] >> 4));
    Put((Bytes[I + 1] & 0xF) << 2);
  }
  return Out;
}

MaybeSymbols genic::uuDecode(const Symbols &Chars) {
  auto Digit = [](uint64_t C) -> int {
    return C >= 0x20 && C <= 0x5F ? static_cast<int>(C - 0x20) : -1;
  };
  Symbols Out;
  size_t I = 0, N = Chars.size();
  while (I != N) {
    size_t Left = N - I;
    if (Left == 1)
      return std::nullopt;
    int A = Digit(Chars[I]), B = Digit(Chars[I + 1]);
    if (A < 0 || B < 0)
      return std::nullopt;
    if (Left == 2) {
      if (B & 0xF)
        return std::nullopt;
      Out.push_back((A << 2) | (B >> 4));
      return Out;
    }
    int C = Digit(Chars[I + 2]);
    if (C < 0)
      return std::nullopt;
    if (Left == 3) {
      if (C & 0x3)
        return std::nullopt;
      Out.push_back((A << 2) | (B >> 4));
      Out.push_back(((B & 0xF) << 4) | (C >> 2));
      return Out;
    }
    int D = Digit(Chars[I + 3]);
    if (D < 0)
      return std::nullopt;
    Out.push_back((A << 2) | (B >> 4));
    Out.push_back(((B & 0xF) << 4) | (C >> 2));
    Out.push_back(((C & 0x3) << 6) | D);
    I += 4;
  }
  return Out;
}

MaybeSymbols genic::base32Encode(const Symbols &Bytes) {
  Symbols Out;
  size_t I = 0, N = Bytes.size();
  auto A = [&](uint64_t V) { return Base32Alphabet[V & 0x1F]; };
  for (; I + 5 <= N; I += 5) {
    uint64_t B0 = Bytes[I], B1 = Bytes[I + 1], B2 = Bytes[I + 2],
             B3 = Bytes[I + 3], B4 = Bytes[I + 4];
    Out.push_back(A(B0 >> 3));
    Out.push_back(A(((B0 & 7) << 2) | (B1 >> 6)));
    Out.push_back(A((B1 >> 1) & 0x1F));
    Out.push_back(A(((B1 & 1) << 4) | (B2 >> 4)));
    Out.push_back(A(((B2 & 0xF) << 1) | (B3 >> 7)));
    Out.push_back(A((B3 >> 2) & 0x1F));
    Out.push_back(A(((B3 & 3) << 3) | (B4 >> 5)));
    Out.push_back(A(B4 & 0x1F));
  }
  size_t Left = N - I;
  auto Pad = [&](unsigned K) {
    for (unsigned J = 0; J < K; ++J)
      Out.push_back('=');
  };
  if (Left == 1) {
    Out.push_back(A(Bytes[I] >> 3));
    Out.push_back(A((Bytes[I] & 7) << 2));
    Pad(6);
  } else if (Left == 2) {
    uint64_t B0 = Bytes[I], B1 = Bytes[I + 1];
    Out.push_back(A(B0 >> 3));
    Out.push_back(A(((B0 & 7) << 2) | (B1 >> 6)));
    Out.push_back(A((B1 >> 1) & 0x1F));
    Out.push_back(A((B1 & 1) << 4));
    Pad(4);
  } else if (Left == 3) {
    uint64_t B0 = Bytes[I], B1 = Bytes[I + 1], B2 = Bytes[I + 2];
    Out.push_back(A(B0 >> 3));
    Out.push_back(A(((B0 & 7) << 2) | (B1 >> 6)));
    Out.push_back(A((B1 >> 1) & 0x1F));
    Out.push_back(A(((B1 & 1) << 4) | (B2 >> 4)));
    Out.push_back(A((B2 & 0xF) << 1));
    Pad(3);
  } else if (Left == 4) {
    uint64_t B0 = Bytes[I], B1 = Bytes[I + 1], B2 = Bytes[I + 2],
             B3 = Bytes[I + 3];
    Out.push_back(A(B0 >> 3));
    Out.push_back(A(((B0 & 7) << 2) | (B1 >> 6)));
    Out.push_back(A((B1 >> 1) & 0x1F));
    Out.push_back(A(((B1 & 1) << 4) | (B2 >> 4)));
    Out.push_back(A(((B2 & 0xF) << 1) | (B3 >> 7)));
    Out.push_back(A((B3 >> 2) & 0x1F));
    Out.push_back(A((B3 & 3) << 3));
    Pad(1);
  }
  return Out;
}

MaybeSymbols genic::base32Decode(const Symbols &Chars) {
  static thread_local std::array<int, 256> Table;
  Table = reverseTable(Base32Alphabet, 32);
  auto Digit = [&](uint64_t C) -> int {
    return C < 256 ? Table[C] : -1;
  };
  if (Chars.size() % 8 != 0)
    return std::nullopt;
  Symbols Out;
  for (size_t I = 0, N = Chars.size(); I != N; I += 8) {
    bool Last = I + 8 == N;
    unsigned NumPad = 0;
    for (size_t J = I; J != I + 8; ++J)
      if (Chars[J] == '=')
        ++NumPad;
    int D[8];
    unsigned NumDigits = 8 - NumPad;
    // Padding must be a suffix.
    for (unsigned J = 0; J < NumDigits; ++J) {
      D[J] = Digit(Chars[I + J]);
      if (D[J] < 0)
        return std::nullopt;
    }
    for (unsigned J = NumDigits; J < 8; ++J)
      if (Chars[I + J] != '=')
        return std::nullopt;
    if (NumPad != 0 && !Last)
      return std::nullopt;
    switch (NumPad) {
    case 0:
      Out.push_back((D[0] << 3) | (D[1] >> 2));
      Out.push_back(((D[1] & 3) << 6) | (D[2] << 1) | (D[3] >> 4));
      Out.push_back(((D[3] & 0xF) << 4) | (D[4] >> 1));
      Out.push_back(((D[4] & 1) << 7) | (D[5] << 2) | (D[6] >> 3));
      Out.push_back(((D[6] & 7) << 5) | D[7]);
      break;
    case 6:
      if (D[1] & 3)
        return std::nullopt;
      Out.push_back((D[0] << 3) | (D[1] >> 2));
      break;
    case 4:
      if (D[3] & 0xF)
        return std::nullopt;
      Out.push_back((D[0] << 3) | (D[1] >> 2));
      Out.push_back(((D[1] & 3) << 6) | (D[2] << 1) | (D[3] >> 4));
      break;
    case 3:
      if (D[4] & 1)
        return std::nullopt;
      Out.push_back((D[0] << 3) | (D[1] >> 2));
      Out.push_back(((D[1] & 3) << 6) | (D[2] << 1) | (D[3] >> 4));
      Out.push_back(((D[3] & 0xF) << 4) | (D[4] >> 1));
      break;
    case 1:
      if (D[6] & 7)
        return std::nullopt;
      Out.push_back((D[0] << 3) | (D[1] >> 2));
      Out.push_back(((D[1] & 3) << 6) | (D[2] << 1) | (D[3] >> 4));
      Out.push_back(((D[3] & 0xF) << 4) | (D[4] >> 1));
      Out.push_back(((D[4] & 1) << 7) | (D[5] << 2) | (D[6] >> 3));
      break;
    default:
      return std::nullopt;
    }
  }
  return Out;
}

MaybeSymbols genic::base16Encode(const Symbols &Bytes) {
  Symbols Out;
  for (uint64_t B : Bytes) {
    Out.push_back(Base16Alphabet[B >> 4]);
    Out.push_back(Base16Alphabet[B & 0xF]);
  }
  return Out;
}

MaybeSymbols genic::base16Decode(const Symbols &Chars) {
  auto Digit = [](uint64_t C) -> int {
    if (C >= '0' && C <= '9')
      return static_cast<int>(C - '0');
    if (C >= 'A' && C <= 'F')
      return static_cast<int>(C - 'A' + 10);
    return -1;
  };
  if (Chars.size() % 2 != 0)
    return std::nullopt;
  Symbols Out;
  for (size_t I = 0, N = Chars.size(); I != N; I += 2) {
    int Hi = Digit(Chars[I]), Lo = Digit(Chars[I + 1]);
    if (Hi < 0 || Lo < 0)
      return std::nullopt;
    Out.push_back((Hi << 4) | Lo);
  }
  return Out;
}

namespace {
bool isScalar(uint64_t C) {
  return C <= 0x10FFFF && !(C >= 0xD800 && C <= 0xDFFF);
}
} // namespace

MaybeSymbols genic::utf8Encode(const Symbols &CodePoints) {
  Symbols Out;
  for (uint64_t C : CodePoints) {
    if (!isScalar(C))
      return std::nullopt;
    if (C <= 0x7F) {
      Out.push_back(C);
    } else if (C <= 0x7FF) {
      Out.push_back(0xC0 | (C >> 6));
      Out.push_back(0x80 | (C & 0x3F));
    } else if (C <= 0xFFFF) {
      Out.push_back(0xE0 | (C >> 12));
      Out.push_back(0x80 | ((C >> 6) & 0x3F));
      Out.push_back(0x80 | (C & 0x3F));
    } else {
      Out.push_back(0xF0 | (C >> 18));
      Out.push_back(0x80 | ((C >> 12) & 0x3F));
      Out.push_back(0x80 | ((C >> 6) & 0x3F));
      Out.push_back(0x80 | (C & 0x3F));
    }
  }
  return Out;
}

MaybeSymbols genic::utf8Decode(const Symbols &Bytes) {
  Symbols Out;
  size_t I = 0, N = Bytes.size();
  auto Cont = [&](size_t J) {
    return J < N && Bytes[J] >= 0x80 && Bytes[J] <= 0xBF;
  };
  while (I != N) {
    uint64_t B = Bytes[I];
    if (B <= 0x7F) {
      Out.push_back(B);
      I += 1;
      continue;
    }
    if (B >= 0xC0 && B <= 0xDF) {
      if (!Cont(I + 1))
        return std::nullopt;
      uint64_t C = ((B & 0x1F) << 6) | (Bytes[I + 1] & 0x3F);
      if (C < 0x80)
        return std::nullopt; // Overlong.
      Out.push_back(C);
      I += 2;
      continue;
    }
    if (B >= 0xE0 && B <= 0xEF) {
      if (!Cont(I + 1) || !Cont(I + 2))
        return std::nullopt;
      uint64_t C = ((B & 0x0F) << 12) | ((Bytes[I + 1] & 0x3F) << 6) |
                   (Bytes[I + 2] & 0x3F);
      if (C < 0x800 || (C >= 0xD800 && C <= 0xDFFF))
        return std::nullopt;
      Out.push_back(C);
      I += 3;
      continue;
    }
    if (B >= 0xF0 && B <= 0xF4) {
      if (!Cont(I + 1) || !Cont(I + 2) || !Cont(I + 3))
        return std::nullopt;
      uint64_t C = ((B & 0x07) << 18) | ((Bytes[I + 1] & 0x3F) << 12) |
                   ((Bytes[I + 2] & 0x3F) << 6) | (Bytes[I + 3] & 0x3F);
      if (C < 0x10000 || C > 0x10FFFF)
        return std::nullopt;
      Out.push_back(C);
      I += 4;
      continue;
    }
    return std::nullopt;
  }
  return Out;
}

MaybeSymbols genic::utf16Encode(const Symbols &CodePoints) {
  Symbols Out;
  for (uint64_t C : CodePoints) {
    if (!isScalar(C))
      return std::nullopt;
    if (C <= 0xFFFF) {
      Out.push_back(C);
    } else {
      uint64_t V = C - 0x10000;
      Out.push_back(0xD800 | (V >> 10));
      Out.push_back(0xDC00 | (V & 0x3FF));
    }
  }
  return Out;
}

MaybeSymbols genic::utf16Decode(const Symbols &Units) {
  Symbols Out;
  size_t I = 0, N = Units.size();
  while (I != N) {
    uint64_t U = Units[I];
    if (U <= 0xFFFF && !(U >= 0xD800 && U <= 0xDFFF)) {
      Out.push_back(U);
      I += 1;
      continue;
    }
    if (U >= 0xD800 && U <= 0xDBFF) {
      if (I + 1 == N || Units[I + 1] < 0xDC00 || Units[I + 1] > 0xDFFF)
        return std::nullopt;
      Out.push_back((((U & 0x3FF) << 10) | (Units[I + 1] & 0x3FF)) + 0x10000);
      I += 2;
      continue;
    }
    return std::nullopt;
  }
  return Out;
}
