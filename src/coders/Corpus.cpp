//===- coders/Corpus.cpp - GENIC sources for the 14 coders -----------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GENIC programs follow Figure 2's style: a character-mapping function
/// E/D, the generic bit-extraction helper B (B h l x = bits h..l of x), and
/// for decoders a digit predicate. Decoders are strict canonical decoders.
///
/// The UTF-8 pair is the RFC 3629 definition (overlongs, surrogates, and
/// values beyond 0x10FFFF all rejected), with the 3- and 4-byte classes
/// split along byte-aligned boundaries so that every rule's output
/// predicate is Cartesian — the decidable fragment of Theorem 4.16 requires
/// it, and the unsplit rules' predicates are genuinely non-Cartesian (the
/// overlong/surrogate boundaries cut through the continuation-byte box).
/// The paper's 4-transition UTF-8 encoder must have glossed this; see
/// EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#include "coders/Corpus.h"

using namespace genic;

namespace {

// --------------------------------------------------------------------------
// BASE64 (Figure 2) and its strict decoder (Figure 3's shape).
// --------------------------------------------------------------------------

const char *Base64EncoderSrc = R"(// BASE64 encoder, Figure 2 of the paper.
fun E (x : (BitVec 8) when x <= #x3f) :=
  (ite (x <= #x19) (x + #x41)
    (ite (x <= #x33) (x + #x47)
      (ite (x <= #x3d) (x - #x04)
        (ite (x == #x3e) #x2b #x2f))))
fun B (h : (BitVec 8)) (l : (BitVec 8)) (x : (BitVec 8)) :=
  (x << (#x07 - h)) >> ((#x07 - h) + l)
trans B64E (l : (BitVec 8) list) : (BitVec 8) :=
  match l with
  | x::y::z::tail when true ->
    (E (B 7 2 x)) ::
    (E (((B 1 0 x) << 4) | (B 7 4 y))) ::
    (E (((B 3 0 y) << 2) | (B 7 6 z))) ::
    (E (B 5 0 z)) ::
    B64E(tail)
  | x::y::[] when true ->
    (E (B 7 2 x)) ::
    (E (((B 1 0 x) << 4) | (B 7 4 y))) ::
    (E ((B 3 0 y) << 2)) ::
    #x3d :: []
  | x::[] when true ->
    (E (B 7 2 x)) :: (E ((B 1 0 x) << 4)) :: #x3d :: #x3d :: []
  | [] when true -> []
isInjective B64E
invert B64E
)";

const char *Base64DecoderSrc = R"(// BASE64 decoder, strict canonical form.
fun D (x : (BitVec 8) when (or (and (#x41 <= x) (x <= #x5a))
                               (and (#x61 <= x) (x <= #x7a))
                               (and (#x30 <= x) (x <= #x39))
                               (x == #x2b) (x == #x2f))) :=
  (ite (x == #x2b) #x3e
    (ite (x == #x2f) #x3f
      (ite (x <= #x39) (x + #x04)
        (ite (x <= #x5a) (x - #x41) (x - #x47)))))
fun B (h : (BitVec 8)) (l : (BitVec 8)) (x : (BitVec 8)) :=
  (x << (#x07 - h)) >> ((#x07 - h) + l)
fun isD (x : (BitVec 8)) :=
  (or (and (#x41 <= x) (x <= #x5a)) (and (#x61 <= x) (x <= #x7a))
      (and (#x30 <= x) (x <= #x39)) (x == #x2b) (x == #x2f))
trans B64D (l : (BitVec 8) list) : (BitVec 8) :=
  match l with
  | a::b::c::d::tail when (and (isD a) (isD b) (isD c) (isD d)) ->
    (((D a) << 2) | (B 5 4 (D b))) ::
    (((B 3 0 (D b)) << 4) | (B 5 2 (D c))) ::
    (((B 1 0 (D c)) << 6) | (D d)) ::
    B64D(tail)
  | a::b::c::d::[] when (and (isD a) (isD b)
                             ((B 3 0 (D b)) == #x00)
                             (c == #x3d) (d == #x3d)) ->
    (((D a) << 2) | (B 5 4 (D b))) :: []
  | a::b::c::d::[] when (and (isD a) (isD b) (isD c)
                             ((B 1 0 (D c)) == #x00) (d == #x3d)) ->
    (((D a) << 2) | (B 5 4 (D b))) ::
    (((B 3 0 (D b)) << 4) | (B 5 2 (D c))) :: []
  | [] when true -> []
isInjective B64D
invert B64D
)";

// --------------------------------------------------------------------------
// Modified BASE64 for XML tokens (§2): '.', '-' for 62/63 and no padding.
// --------------------------------------------------------------------------

const char *ModBase64EncoderSrc = R"(// Modified BASE64 (XML tokens, §2).
fun E (x : (BitVec 8) when x <= #x3f) :=
  (ite (x <= #x19) (x + #x41)
    (ite (x <= #x33) (x + #x47)
      (ite (x <= #x3d) (x - #x04)
        (ite (x == #x3e) #x2e #x2d))))
fun B (h : (BitVec 8)) (l : (BitVec 8)) (x : (BitVec 8)) :=
  (x << (#x07 - h)) >> ((#x07 - h) + l)
trans MB64E (l : (BitVec 8) list) : (BitVec 8) :=
  match l with
  | x::y::z::tail when true ->
    (E (B 7 2 x)) ::
    (E (((B 1 0 x) << 4) | (B 7 4 y))) ::
    (E (((B 3 0 y) << 2) | (B 7 6 z))) ::
    (E (B 5 0 z)) ::
    MB64E(tail)
  | x::y::[] when true ->
    (E (B 7 2 x)) ::
    (E (((B 1 0 x) << 4) | (B 7 4 y))) ::
    (E ((B 3 0 y) << 2)) :: []
  | x::[] when true ->
    (E (B 7 2 x)) :: (E ((B 1 0 x) << 4)) :: []
  | [] when true -> []
isInjective MB64E
invert MB64E
)";

const char *ModBase64DecoderSrc = R"(// Modified BASE64 decoder (§2), strict.
fun D (x : (BitVec 8) when (or (and (#x41 <= x) (x <= #x5a))
                               (and (#x61 <= x) (x <= #x7a))
                               (and (#x30 <= x) (x <= #x39))
                               (x == #x2e) (x == #x2d))) :=
  (ite (x == #x2d) #x3f
    (ite (x == #x2e) #x3e
      (ite (x <= #x39) (x + #x04)
        (ite (x <= #x5a) (x - #x41) (x - #x47)))))
fun B (h : (BitVec 8)) (l : (BitVec 8)) (x : (BitVec 8)) :=
  (x << (#x07 - h)) >> ((#x07 - h) + l)
fun isD (x : (BitVec 8)) :=
  (or (and (#x41 <= x) (x <= #x5a)) (and (#x61 <= x) (x <= #x7a))
      (and (#x30 <= x) (x <= #x39)) (x == #x2e) (x == #x2d))
trans MB64D (l : (BitVec 8) list) : (BitVec 8) :=
  match l with
  | a::b::c::d::tail when (and (isD a) (isD b) (isD c) (isD d)) ->
    (((D a) << 2) | (B 5 4 (D b))) ::
    (((B 3 0 (D b)) << 4) | (B 5 2 (D c))) ::
    (((B 1 0 (D c)) << 6) | (D d)) ::
    MB64D(tail)
  | a::b::[] when (and (isD a) (isD b) ((B 3 0 (D b)) == #x00)) ->
    (((D a) << 2) | (B 5 4 (D b))) :: []
  | a::b::c::[] when (and (isD a) (isD b) (isD c)
                          ((B 1 0 (D c)) == #x00)) ->
    (((D a) << 2) | (B 5 4 (D b))) ::
    (((B 3 0 (D b)) << 4) | (B 5 2 (D c))) :: []
  | [] when true -> []
isInjective MB64D
invert MB64D
)";

// --------------------------------------------------------------------------
// BASE32 (RFC 4648): 5 bytes <-> 8 five-bit digits, '=' padding.
// --------------------------------------------------------------------------

const char *Base32EncoderSrc = R"(// BASE32 encoder (RFC 4648).
fun E (x : (BitVec 8) when x <= #x1f) :=
  (ite (x <= #x19) (x + #x41) (x + #x18))
fun B (h : (BitVec 8)) (l : (BitVec 8)) (x : (BitVec 8)) :=
  (x << (#x07 - h)) >> ((#x07 - h) + l)
trans B32E (l : (BitVec 8) list) : (BitVec 8) :=
  match l with
  | x0::x1::x2::x3::x4::tail when true ->
    (E (B 7 3 x0)) ::
    (E (((B 2 0 x0) << 2) | (B 7 6 x1))) ::
    (E (B 5 1 x1)) ::
    (E (((B 0 0 x1) << 4) | (B 7 4 x2))) ::
    (E (((B 3 0 x2) << 1) | (B 7 7 x3))) ::
    (E (B 6 2 x3)) ::
    (E (((B 1 0 x3) << 3) | (B 7 5 x4))) ::
    (E (B 4 0 x4)) ::
    B32E(tail)
  | x0::[] when true ->
    (E (B 7 3 x0)) :: (E ((B 2 0 x0) << 2)) ::
    #x3d :: #x3d :: #x3d :: #x3d :: #x3d :: #x3d :: []
  | x0::x1::[] when true ->
    (E (B 7 3 x0)) ::
    (E (((B 2 0 x0) << 2) | (B 7 6 x1))) ::
    (E (B 5 1 x1)) ::
    (E ((B 0 0 x1) << 4)) ::
    #x3d :: #x3d :: #x3d :: #x3d :: []
  | x0::x1::x2::[] when true ->
    (E (B 7 3 x0)) ::
    (E (((B 2 0 x0) << 2) | (B 7 6 x1))) ::
    (E (B 5 1 x1)) ::
    (E (((B 0 0 x1) << 4) | (B 7 4 x2))) ::
    (E ((B 3 0 x2) << 1)) ::
    #x3d :: #x3d :: #x3d :: []
  | x0::x1::x2::x3::[] when true ->
    (E (B 7 3 x0)) ::
    (E (((B 2 0 x0) << 2) | (B 7 6 x1))) ::
    (E (B 5 1 x1)) ::
    (E (((B 0 0 x1) << 4) | (B 7 4 x2))) ::
    (E (((B 3 0 x2) << 1) | (B 7 7 x3))) ::
    (E (B 6 2 x3)) ::
    (E ((B 1 0 x3) << 3)) ::
    #x3d :: []
  | [] when true -> []
isInjective B32E
invert B32E
)";

const char *Base32DecoderSrc = R"(// BASE32 decoder (RFC 4648), strict.
fun D (x : (BitVec 8) when (or (and (#x41 <= x) (x <= #x5a))
                               (and (#x32 <= x) (x <= #x37)))) :=
  (ite (x <= #x37) (x - #x18) (x - #x41))
fun B (h : (BitVec 8)) (l : (BitVec 8)) (x : (BitVec 8)) :=
  (x << (#x07 - h)) >> ((#x07 - h) + l)
fun isD (x : (BitVec 8)) :=
  (or (and (#x41 <= x) (x <= #x5a)) (and (#x32 <= x) (x <= #x37)))
trans B32D (l : (BitVec 8) list) : (BitVec 8) :=
  match l with
  | a0::a1::a2::a3::a4::a5::a6::a7::tail when
      (and (isD a0) (isD a1) (isD a2) (isD a3)
           (isD a4) (isD a5) (isD a6) (isD a7)) ->
    (((D a0) << 3) | (B 4 2 (D a1))) ::
    (((B 1 0 (D a1)) << 6) | ((D a2) << 1) | (B 4 4 (D a3))) ::
    (((B 3 0 (D a3)) << 4) | (B 4 1 (D a4))) ::
    (((B 0 0 (D a4)) << 7) | ((D a5) << 2) | (B 4 3 (D a6))) ::
    (((B 2 0 (D a6)) << 5) | (D a7)) ::
    B32D(tail)
  | a0::a1::p0::p1::p2::p3::p4::p5::[] when
      (and (isD a0) (isD a1) ((B 1 0 (D a1)) == #x00)
           (p0 == #x3d) (p1 == #x3d) (p2 == #x3d)
           (p3 == #x3d) (p4 == #x3d) (p5 == #x3d)) ->
    (((D a0) << 3) | (B 4 2 (D a1))) :: []
  | a0::a1::a2::a3::p0::p1::p2::p3::[] when
      (and (isD a0) (isD a1) (isD a2) (isD a3)
           ((B 3 0 (D a3)) == #x00)
           (p0 == #x3d) (p1 == #x3d) (p2 == #x3d) (p3 == #x3d)) ->
    (((D a0) << 3) | (B 4 2 (D a1))) ::
    (((B 1 0 (D a1)) << 6) | ((D a2) << 1) | (B 4 4 (D a3))) :: []
  | a0::a1::a2::a3::a4::p0::p1::p2::[] when
      (and (isD a0) (isD a1) (isD a2) (isD a3) (isD a4)
           ((B 0 0 (D a4)) == #x00)
           (p0 == #x3d) (p1 == #x3d) (p2 == #x3d)) ->
    (((D a0) << 3) | (B 4 2 (D a1))) ::
    (((B 1 0 (D a1)) << 6) | ((D a2) << 1) | (B 4 4 (D a3))) ::
    (((B 3 0 (D a3)) << 4) | (B 4 1 (D a4))) :: []
  | a0::a1::a2::a3::a4::a5::a6::p0::[] when
      (and (isD a0) (isD a1) (isD a2) (isD a3)
           (isD a4) (isD a5) (isD a6)
           ((B 2 0 (D a6)) == #x00) (p0 == #x3d)) ->
    (((D a0) << 3) | (B 4 2 (D a1))) ::
    (((B 1 0 (D a1)) << 6) | ((D a2) << 1) | (B 4 4 (D a3))) ::
    (((B 3 0 (D a3)) << 4) | (B 4 1 (D a4))) ::
    (((B 0 0 (D a4)) << 7) | ((D a5) << 2) | (B 4 3 (D a6))) :: []
  | [] when true -> []
isInjective B32D
invert B32D
)";

// --------------------------------------------------------------------------
// BASE16 (uppercase hex).
// --------------------------------------------------------------------------

const char *Base16EncoderSrc = R"(// BASE16 (hex) encoder.
fun E (x : (BitVec 8) when x <= #x0f) :=
  (ite (x <= #x09) (x + #x30) (x + #x37))
fun B (h : (BitVec 8)) (l : (BitVec 8)) (x : (BitVec 8)) :=
  (x << (#x07 - h)) >> ((#x07 - h) + l)
trans B16E (l : (BitVec 8) list) : (BitVec 8) :=
  match l with
  | x::tail when true ->
    (E (B 7 4 x)) :: (E (B 3 0 x)) :: B16E(tail)
  | [] when true -> []
isInjective B16E
invert B16E
)";

const char *Base16DecoderSrc = R"(// BASE16 (hex) decoder, strict uppercase.
fun D (x : (BitVec 8) when (or (and (#x30 <= x) (x <= #x39))
                               (and (#x41 <= x) (x <= #x46)))) :=
  (ite (x <= #x39) (x - #x30) (x - #x37))
fun B (h : (BitVec 8)) (l : (BitVec 8)) (x : (BitVec 8)) :=
  (x << (#x07 - h)) >> ((#x07 - h) + l)
fun isD (x : (BitVec 8)) :=
  (or (and (#x30 <= x) (x <= #x39)) (and (#x41 <= x) (x <= #x46)))
trans B16D (l : (BitVec 8) list) : (BitVec 8) :=
  match l with
  | a::b::tail when (and (isD a) (isD b)) ->
    (((D a) << 4) | (D b)) :: B16D(tail)
  | [] when true -> []
isInjective B16D
invert B16D
)";

// --------------------------------------------------------------------------
// UU body encoding (space variant, no length prefix, no padding chars).
// --------------------------------------------------------------------------

const char *UuEncoderSrc = R"(// UU body encoder (space variant).
fun E (x : (BitVec 8) when x <= #x3f) := x + #x20
fun B (h : (BitVec 8)) (l : (BitVec 8)) (x : (BitVec 8)) :=
  (x << (#x07 - h)) >> ((#x07 - h) + l)
trans UUE (l : (BitVec 8) list) : (BitVec 8) :=
  match l with
  | x::y::z::tail when true ->
    (E (B 7 2 x)) ::
    (E (((B 1 0 x) << 4) | (B 7 4 y))) ::
    (E (((B 3 0 y) << 2) | (B 7 6 z))) ::
    (E (B 5 0 z)) ::
    UUE(tail)
  | x::y::[] when true ->
    (E (B 7 2 x)) ::
    (E (((B 1 0 x) << 4) | (B 7 4 y))) ::
    (E ((B 3 0 y) << 2)) :: []
  | x::[] when true ->
    (E (B 7 2 x)) :: (E ((B 1 0 x) << 4)) :: []
  | [] when true -> []
isInjective UUE
invert UUE
)";

const char *UuDecoderSrc = R"(// UU body decoder (space variant), strict.
fun D (x : (BitVec 8) when (and (#x20 <= x) (x <= #x5f))) := x - #x20
fun B (h : (BitVec 8)) (l : (BitVec 8)) (x : (BitVec 8)) :=
  (x << (#x07 - h)) >> ((#x07 - h) + l)
fun isD (x : (BitVec 8)) := (and (#x20 <= x) (x <= #x5f))
trans UUD (l : (BitVec 8) list) : (BitVec 8) :=
  match l with
  | a::b::c::d::tail when (and (isD a) (isD b) (isD c) (isD d)) ->
    (((D a) << 2) | (B 5 4 (D b))) ::
    (((B 3 0 (D b)) << 4) | (B 5 2 (D c))) ::
    (((B 1 0 (D c)) << 6) | (D d)) ::
    UUD(tail)
  | a::b::[] when (and (isD a) (isD b) ((B 3 0 (D b)) == #x00)) ->
    (((D a) << 2) | (B 5 4 (D b))) :: []
  | a::b::c::[] when (and (isD a) (isD b) (isD c)
                          ((B 1 0 (D c)) == #x00)) ->
    (((D a) << 2) | (B 5 4 (D b))) ::
    (((B 3 0 (D b)) << 4) | (B 5 2 (D c))) :: []
  | [] when true -> []
isInjective UUD
invert UUD
)";

// --------------------------------------------------------------------------
// UTF-8 (RFC 3629), 3- and 4-byte classes split on byte-aligned boundaries
// so every rule's output predicate is Cartesian (see file comment).
// --------------------------------------------------------------------------

const char *Utf8EncoderSrc = R"(// UTF-8 encoder (RFC 3629, Cartesian-split).
fun cont (x : (BitVec 32)) := #x00000080 | (x & #x0000003f)
trans U8E (l : (BitVec 32) list) : (BitVec 32) :=
  match l with
  | x::tail when x <= #x0000007f -> x :: U8E(tail)
  | x::tail when (and (#x00000080 <= x) (x <= #x000007ff)) ->
    (#x000000c0 | (x >> 6)) :: (cont x) :: U8E(tail)
  | x::tail when (and (#x00000800 <= x) (x <= #x00000fff)) ->
    #x000000e0 :: (cont (x >> 6)) :: (cont x) :: U8E(tail)
  | x::tail when (and (#x00001000 <= x) (x <= #x0000cfff)) ->
    (#x000000e0 | (x >> 12)) :: (cont (x >> 6)) :: (cont x) :: U8E(tail)
  | x::tail when (and (#x0000d000 <= x) (x <= #x0000d7ff)) ->
    #x000000ed :: (cont (x >> 6)) :: (cont x) :: U8E(tail)
  | x::tail when (and (#x0000e000 <= x) (x <= #x0000ffff)) ->
    (#x000000e0 | (x >> 12)) :: (cont (x >> 6)) :: (cont x) :: U8E(tail)
  | x::tail when (and (#x00010000 <= x) (x <= #x0003ffff)) ->
    #x000000f0 :: (cont (x >> 12)) :: (cont (x >> 6)) :: (cont x) :: U8E(tail)
  | x::tail when (and (#x00040000 <= x) (x <= #x000fffff)) ->
    (#x000000f0 | (x >> 18)) :: (cont (x >> 12)) :: (cont (x >> 6)) ::
    (cont x) :: U8E(tail)
  | x::tail when (and (#x00100000 <= x) (x <= #x0010ffff)) ->
    #x000000f4 :: (cont (x >> 12)) :: (cont (x >> 6)) :: (cont x) :: U8E(tail)
  | [] when true -> []
isInjective U8E
invert U8E
)";

const char *Utf8DecoderSrc = R"(// UTF-8 decoder (RFC 3629, strict), Cartesian-split.
fun isCont (x : (BitVec 32)) := (and (#x00000080 <= x) (x <= #x000000bf))
trans U8D (l : (BitVec 32) list) : (BitVec 32) :=
  match l with
  | a::tail when a <= #x0000007f -> a :: U8D(tail)
  | a::b::tail when (and (#x000000c2 <= a) (a <= #x000000df) (isCont b)) ->
    (((a & #x0000001f) << 6) | (b & #x0000003f)) :: U8D(tail)
  | a::b::c::tail when (and (a == #x000000e0)
                            (#x000000a0 <= b) (b <= #x000000bf)
                            (isCont c)) ->
    (((b & #x0000003f) << 6) | (c & #x0000003f)) :: U8D(tail)
  | a::b::c::tail when (and (#x000000e1 <= a) (a <= #x000000ec)
                            (isCont b) (isCont c)) ->
    (((a & #x0000000f) << 12) | ((b & #x0000003f) << 6) |
     (c & #x0000003f)) :: U8D(tail)
  | a::b::c::tail when (and (a == #x000000ed)
                            (#x00000080 <= b) (b <= #x0000009f)
                            (isCont c)) ->
    (#x0000d000 | ((b & #x0000003f) << 6) | (c & #x0000003f)) :: U8D(tail)
  | a::b::c::tail when (and (#x000000ee <= a) (a <= #x000000ef)
                            (isCont b) (isCont c)) ->
    (((a & #x0000000f) << 12) | ((b & #x0000003f) << 6) |
     (c & #x0000003f)) :: U8D(tail)
  | a::b::c::d::tail when (and (a == #x000000f0)
                               (#x00000090 <= b) (b <= #x000000bf)
                               (isCont c) (isCont d)) ->
    (((b & #x0000003f) << 12) | ((c & #x0000003f) << 6) |
     (d & #x0000003f)) :: U8D(tail)
  | a::b::c::d::tail when (and (#x000000f1 <= a) (a <= #x000000f3)
                               (isCont b) (isCont c) (isCont d)) ->
    (((a & #x00000007) << 18) | ((b & #x0000003f) << 12) |
     ((c & #x0000003f) << 6) | (d & #x0000003f)) :: U8D(tail)
  | a::b::c::d::tail when (and (a == #x000000f4)
                               (#x00000080 <= b) (b <= #x0000008f)
                               (isCont c) (isCont d)) ->
    (#x00100000 | ((b & #x0000003f) << 12) | ((c & #x0000003f) << 6) |
     (d & #x0000003f)) :: U8D(tail)
  | [] when true -> []
isInjective U8D
invert U8D
)";

// --------------------------------------------------------------------------
// UTF-16.
// --------------------------------------------------------------------------

const char *Utf16EncoderSrc = R"(// UTF-16 encoder.
trans U16E (l : (BitVec 32) list) : (BitVec 32) :=
  match l with
  | x::tail when (and (x <= #x0000ffff)
                      (not (and (#x0000d800 <= x) (x <= #x0000dfff)))) ->
    x :: U16E(tail)
  | x::tail when (and (#x00010000 <= x) (x <= #x0010ffff)) ->
    (#x0000d800 | ((x - #x00010000) >> 10)) ::
    (#x0000dc00 | ((x - #x00010000) & #x000003ff)) ::
    U16E(tail)
  | [] when true -> []
isInjective U16E
invert U16E
)";

const char *Utf16DecoderSrc = R"(// UTF-16 decoder, strict.
trans U16D (l : (BitVec 32) list) : (BitVec 32) :=
  match l with
  | u::tail when (and (u <= #x0000ffff)
                      (not (and (#x0000d800 <= u) (u <= #x0000dfff)))) ->
    u :: U16D(tail)
  | hi::lo::tail when (and (#x0000d800 <= hi) (hi <= #x0000dbff)
                           (#x0000dc00 <= lo) (lo <= #x0000dfff)) ->
    ((((hi & #x000003ff) << 10) | (lo & #x000003ff)) + #x00010000) ::
    U16D(tail)
  | [] when true -> []
isInjective U16D
invert U16D
)";

// --------------------------------------------------------------------------
// Input samplers.
// --------------------------------------------------------------------------

Symbols randomBytes(std::mt19937_64 &Rng, unsigned Length) {
  Symbols Out;
  for (unsigned I = 0; I < Length; ++I)
    Out.push_back(Rng() & 0xFF);
  return Out;
}

Symbols randomScalars(std::mt19937_64 &Rng, unsigned Length) {
  Symbols Out;
  while (Out.size() < Length) {
    uint64_t C = Rng() % 0x110000;
    if (C >= 0xD800 && C <= 0xDFFF)
      continue;
    Out.push_back(C);
  }
  return Out;
}

template <MaybeSymbols (*Encode)(const Symbols &)>
Symbols encodedBytes(std::mt19937_64 &Rng, unsigned Length) {
  return *Encode(randomBytes(Rng, Length));
}

template <MaybeSymbols (*Encode)(const Symbols &)>
Symbols encodedScalars(std::mt19937_64 &Rng, unsigned Length) {
  return *Encode(randomScalars(Rng, Length));
}

} // namespace

const std::vector<CoderSpec> &genic::coderCorpus() {
  static const std::vector<CoderSpec> Corpus = {
      {"BASE64", "encoder", Base64EncoderSrc, 8, base64Encode, base64Decode,
       randomBytes},
      {"BASE64", "decoder", Base64DecoderSrc, 8, base64Decode, base64Encode,
       encodedBytes<base64Encode>},
      {"mod BASE64", "encoder", ModBase64EncoderSrc, 8, modifiedBase64Encode,
       modifiedBase64Decode, randomBytes},
      {"mod BASE64", "decoder", ModBase64DecoderSrc, 8, modifiedBase64Decode,
       modifiedBase64Encode, encodedBytes<modifiedBase64Encode>},
      {"BASE32", "encoder", Base32EncoderSrc, 8, base32Encode, base32Decode,
       randomBytes},
      {"BASE32", "decoder", Base32DecoderSrc, 8, base32Decode, base32Encode,
       encodedBytes<base32Encode>},
      {"BASE16", "encoder", Base16EncoderSrc, 8, base16Encode, base16Decode,
       randomBytes},
      {"BASE16", "decoder", Base16DecoderSrc, 8, base16Decode, base16Encode,
       encodedBytes<base16Encode>},
      {"UTF-8", "encoder", Utf8EncoderSrc, 32, utf8Encode, utf8Decode,
       randomScalars},
      {"UTF-8", "decoder", Utf8DecoderSrc, 32, utf8Decode, utf8Encode,
       encodedScalars<utf8Encode>},
      {"UTF-16", "encoder", Utf16EncoderSrc, 32, utf16Encode, utf16Decode,
       randomScalars},
      {"UTF-16", "decoder", Utf16DecoderSrc, 32, utf16Decode, utf16Encode,
       encodedScalars<utf16Encode>},
      {"UU", "encoder", UuEncoderSrc, 8, uuEncode, uuDecode, randomBytes},
      {"UU", "decoder", UuDecoderSrc, 8, uuDecode, uuEncode,
       encodedBytes<uuEncode>},
  };
  return Corpus;
}
