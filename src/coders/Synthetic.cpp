//===- coders/Synthetic.cpp ------------------------------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//

#include "coders/Synthetic.h"

#include <random>

using namespace genic;

std::string genic::makeStProgram(unsigned K) {
  std::string Out = "// Synthetic ST program S_" + std::to_string(K) +
                    " (paper §7.2).\n";
  for (unsigned I = 0; I <= K; ++I) {
    long C = static_cast<long>(I) + 1;
    long D = 2 * static_cast<long>(I) + 3;
    Out += "trans S" + std::to_string(I) + " (l : Int list) : Int :=\n";
    Out += "  match l with\n";
    if (I < K) {
      Out += "  | x1::x2::x3::tail when x1 == 0 -> x1 :: (x2 + " +
             std::to_string(C) + ") :: (x3 + " + std::to_string(D) +
             ") :: S" + std::to_string(I) + "(tail)\n";
      Out += "  | x1::x2::x3::tail when x1 == 1 -> x1 :: (x2 + " +
             std::to_string(C) + ") :: (x3 + " + std::to_string(D) +
             ") :: S" + std::to_string(I + 1) + "(tail)\n";
    }
    Out += "  | [] when true -> []\n";
  }
  Out += "isInjective S0\n";
  Out += "invert S0\n";
  return Out;
}

std::string genic::makeRandomLiaProgram(uint64_t Seed, unsigned NumStates) {
  std::mt19937_64 Rng(Seed * 0x9E3779B97F4A7C15ULL + 1);
  std::string Out = "// Random injective LIA transducer, seed " +
                    std::to_string(Seed) + ".\n";
  for (unsigned I = 0; I < NumStates; ++I) {
    Out += "trans R" + std::to_string(I) + " (l : Int list) : Int :=\n";
    Out += "  match l with\n";
    // 1 or 2 rules with disjoint guard intervals on x1; the first output is
    // x1 itself, which keeps the program path-injective (the output word
    // pins the rule fired at every step).
    unsigned NumRules = 1 + Rng() % 2;
    long Split = 10 + static_cast<long>(Rng() % 80);
    for (unsigned R = 0; R < NumRules; ++R) {
      long Lo = R == 0 ? 0 : Split;
      long Hi = (NumRules == 1 || R == 1) ? 100 : Split;
      long C = static_cast<long>(Rng() % 41) - 20;
      long D = static_cast<long>(Rng() % 41) - 20;
      unsigned Target = Rng() % NumStates;
      std::string CTxt = C < 0 ? "- " + std::to_string(-C)
                               : "+ " + std::to_string(C);
      std::string DTxt = D < 0 ? "- " + std::to_string(-D)
                               : "+ " + std::to_string(D);
      Out += "  | x1::x2::x3::tail when (and (" + std::to_string(Lo) +
             " <= x1) (x1 < " + std::to_string(Hi) + ")) -> x1 :: (x2 " +
             CTxt + ") :: (x3 " + DTxt + ") :: R" + std::to_string(Target) +
             "(tail)\n";
    }
    Out += "  | [] when true -> []\n";
  }
  Out += "isInjective R0\n";
  Out += "invert R0\n";
  return Out;
}
