//===- coders/Corpus.h - The 14 coders of Table 1 --------------------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark corpus of §7.1: GENIC source programs for the 7 coder
/// families (BASE64, modified BASE64, BASE32, BASE16, UTF-8, UTF-16, UU),
/// encoder and decoder each, paired with native oracles and valid-input
/// samplers for testing.
///
/// Decoders are strict canonical decoders (non-canonical padding bits
/// rejected); this is what makes them injective and hence invertible. The
/// UTF-8 programs do not exclude surrogate code points (WTF-8 style): the
/// exclusion hole would make the 3-byte rule's output predicate
/// non-Cartesian, putting the program outside the decidable injectivity
/// fragment — the original evaluation's programs must have made the same
/// choice, since all 14 were proved injective.
///
//===----------------------------------------------------------------------===//

#ifndef GENIC_CODERS_CORPUS_H
#define GENIC_CODERS_CORPUS_H

#include "coders/Reference.h"

#include <random>
#include <string>
#include <vector>

namespace genic {

struct CoderSpec {
  std::string Family;  // e.g. "BASE64"
  std::string Variant; // "encoder" or "decoder"
  std::string Source;  // GENIC program text
  unsigned SymbolBits; // 8 or 32

  /// The forward transformation (what the GENIC program computes).
  MaybeSymbols (*Oracle)(const Symbols &);
  /// The opposite direction (what the inverted program must compute).
  MaybeSymbols (*InverseOracle)(const Symbols &);
  /// Generates a valid input of roughly \p Length symbols.
  Symbols (*MakeInput)(std::mt19937_64 &Rng, unsigned Length);

  std::string name() const { return Family + " " + Variant; }
};

/// The 14 coders, in Table 1 order.
const std::vector<CoderSpec> &coderCorpus();

} // namespace genic

#endif // GENIC_CODERS_CORPUS_H
