//===- examples/modified_base64.cpp - The §2 motivating scenario ----------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 2's motivating example: a small change to the encoder (the XML
/// token variant maps 62/63 to '.'/'-' and drops padding) triggers
/// non-trivial changes in the decoder — new mapping table, new end-of-input
/// handling, different rule patterns. Instead of hand-porting the decoder,
/// re-run the inverter on the modified encoder and diff the results.
///
//===----------------------------------------------------------------------===//

#include "coders/Corpus.h"
#include "engine/InversionEngine.h"

#include <cstdio>

using namespace genic;

namespace {

/// Runs the full pipeline on one encoder and reports shape facts.
Result<GenicReport> invertCoder(const CoderSpec &Spec) {
  std::printf("=== %s ===\n", Spec.name().c_str());
  GenicTool Tool;
  Result<GenicReport> Report = Tool.run(Spec.Source);
  if (!Report)
    return Report;
  std::printf("  injective %s in %.2fs; inverse synthesized in %.2fs\n",
              Report->Injectivity->Injective ? "proved" : "refuted",
              Report->Timings.InjectivitySeconds, Report->Timings.InversionSeconds);
  unsigned Finalizers = 0;
  for (const SeftTransition &T : Report->InverseMachine->transitions())
    Finalizers += T.To == Seft::FinalState ? 1 : 0;
  std::printf("  inverse: %zu rules (%u finalizers), lookahead %u, "
              "%zu bytes of source\n",
              Report->InverseMachine->transitions().size(), Finalizers,
              Report->InverseMachine->lookahead(),
              Report->InverseSourceBytes);
  return Report;
}

} // namespace

int main() {
  // The standard BASE64 encoder and the XML-token variant differ in 4
  // source lines; their decoders differ structurally.
  Result<GenicReport> Standard = invertCoder(coderCorpus()[0]);
  if (!Standard) {
    std::fprintf(stderr, "error: %s\n", Standard.status().message().c_str());
    return 1;
  }
  Result<GenicReport> Modified = invertCoder(coderCorpus()[2]);
  if (!Modified) {
    std::fprintf(stderr, "error: %s\n", Modified.status().message().c_str());
    return 1;
  }

  // The derived decoders handle end-of-input differently: the padded one
  // always consumes 4 trailing characters, the unpadded one 2 or 3.
  auto Lookaheads = [](const Seft &M) {
    std::string Out;
    for (const SeftTransition &T : M.transitions())
      if (T.To == Seft::FinalState)
        Out += (Out.empty() ? "" : ", ") + std::to_string(T.Lookahead);
    return Out;
  };
  std::printf("\nfinalizer lookaheads of the two synthesized decoders:\n");
  std::printf("  standard BASE64: %s\n",
              Lookaheads(*Standard->InverseMachine).c_str());
  std::printf("  modified BASE64: %s\n",
              Lookaheads(*Modified->InverseMachine).c_str());

  // And of course both round-trip their own dialect.
  ValueList Input;
  for (unsigned char C : std::string("Sound & complete!"))
    Input.push_back(Value::bitVecVal(C, 8));
  for (const auto *R : {&*Standard, &*Modified}) {
    auto Enc = R->Machine->transduceFunctional(Input);
    auto Dec = R->InverseMachine->transduce(*Enc, 2);
    if (Dec.size() != 1 || Dec[0] != Input) {
      std::fprintf(stderr, "round-trip failed\n");
      return 1;
    }
  }
  std::printf("\nboth dialects round-trip: OK\n");
  return 0;
}
