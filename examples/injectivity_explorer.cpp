//===- examples/injectivity_explorer.cpp - Witnesses for non-injectivity --===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// isInjective is more than a yes/no oracle: for non-injective programs it
/// produces two concrete input lists with the same output (§3.4). This
/// example walks through the paper's taxonomy — transition-injectivity
/// failures (Example 4.3) and path-injectivity failures (Example 4.5) —
/// and prints the witnesses.
///
//===----------------------------------------------------------------------===//

#include "engine/InversionEngine.h"

#include <cstdio>

using namespace genic;

namespace {

int show(const char *Title, const char *Source) {
  std::printf("=== %s ===\n", Title);
  GenicTool Tool;
  Result<GenicReport> Report = Tool.run(Source, /*ForceInjectivity=*/true);
  if (!Report) {
    std::fprintf(stderr, "error: %s\n", Report.status().message().c_str());
    return 1;
  }
  const InjectivityResult &Inj = *Report->Injectivity;
  if (Inj.Injective) {
    std::printf("  injective (%.3fs)\n\n", Report->Timings.InjectivitySeconds);
    return 0;
  }
  std::printf("  NOT injective: %s\n", Inj.Detail.c_str());
  if (Inj.Witness) {
    const auto &[U1, U2] = *Inj.Witness;
    auto Out1 = Report->Machine->transduce(U1);
    std::printf("  witness inputs %s and %s\n", toString(U1).c_str(),
                toString(U2).c_str());
    std::printf("  both map to    %s\n", toString(Out1.at(0)).c_str());
  }
  std::printf("\n");
  return 0;
}

} // namespace

int main() {
  int Rc = 0;

  // Example 4.3: squaring conflates x and -x...
  Rc |= show("squaring over all integers (Example 4.3)",
             "trans Sq (l : Int list) : Int :=\n"
             "  match l with\n"
             "  | x::tail when true -> (x * x) :: Sq(tail)\n"
             "  | [] when true -> []\n"
             "isInjective Sq\n");

  // ... and restricting the guard restores injectivity. (Example 4.3 uses
  // the square again; its image predicate is nonlinear and falls outside
  // the decidable LIA fragment, so this uses an affine rule instead.)
  Rc |= show("affine rule restricted to positives",
             "trans Sh (l : Int list) : Int :=\n"
             "  match l with\n"
             "  | x::tail when x > 0 -> (x - 5) :: Sh(tail)\n"
             "  | [] when true -> []\n"
             "isInjective Sh\n");

  // Example 4.5: every rule injective, yet two different paths collide.
  Rc |= show(
      "transition-injective but not path-injective (Example 4.5)",
      "trans P (l : Int list) : Int :=\n"
      "  match l with\n"
      "  | x::tail when x > 0 -> (x - 5) :: Q(tail)\n"
      "  | x::y::[] when (and (x < 0) (y < 0)) -> (x + 5) :: (y + 5) :: []\n"
      "trans Q (l : Int list) : Int :=\n"
      "  match l with\n"
      "  | x::[] when x > 0 -> (x - 5) :: []\n"
      "isInjective P\n");

  // A coder-style bug: dropping the canonical-padding-bits check from a
  // decoder quietly destroys injectivity ("TR==" and "TQ==" both decode to
  // the same byte) — exactly the class of real-world mistakes §1 cites.
  Rc |= show(
      "lenient BASE16-style decoder that ignores the low bit",
      "trans Dec (l : (BitVec 8) list) : (BitVec 8) :=\n"
      "  match l with\n"
      "  | a::b::tail when true -> ((a & #xfe) | (b & #x01)) :: Dec(tail)\n"
      "  | [] when true -> []\n"
      "isInjective Dec\n");

  return Rc;
}
