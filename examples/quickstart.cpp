//===- examples/quickstart.cpp - First steps with the library -------------===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five-minute tour: write a small GENIC program over integer lists,
/// check that it is injective, invert it, and run both directions.
///
/// Build and run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "engine/InversionEngine.h"

#include <cstdio>

using namespace genic;

int main() {
  // A little "cipher" over lists of integers: pairs (x, y) with positive x
  // are emitted as (x + y, x). This is Example 6.1 of the paper dressed as
  // a program.
  const char *Source = R"(
trans Enc (l : Int list) : Int :=
  match l with
  | x::y::tail when (and (x >= 0) (y >= 0)) -> (x + y) :: x :: Enc(tail)
  | [] when true -> []
isInjective Enc
invert Enc
)";

  GenicTool Tool;
  Result<GenicReport> Report = Tool.run(Source);
  if (!Report) {
    std::fprintf(stderr, "error: %s\n", Report.status().message().c_str());
    return 1;
  }

  std::printf("program '%s': %u state(s), %u rule(s)\n",
              Report->EntryName.c_str(), Report->NumStates,
              Report->NumTransitions);
  std::printf("deterministic: %s (%.3fs)\n",
              Report->Deterministic ? "yes" : "no",
              Report->Timings.DeterminismSeconds);
  std::printf("injective:     %s (%.3fs)\n",
              Report->Injectivity->Injective ? "yes" : "no",
              Report->Timings.InjectivitySeconds);
  std::printf("inverted:      %s (%.3fs)\n\n",
              Report->Inversion->complete() ? "yes" : "partially",
              Report->Timings.InversionSeconds);

  std::printf("--- synthesized inverse program ---\n%s\n",
              Report->InverseSource.c_str());

  // Drive both machines on a concrete list.
  ValueList Input{Value::intVal(3), Value::intVal(4), Value::intVal(10),
                  Value::intVal(0)};
  auto Encoded = Report->Machine->transduceFunctional(Input);
  auto Decoded = Report->InverseMachine->transduce(*Encoded, 2);
  std::printf("input:   %s\n", toString(Input).c_str());
  std::printf("encoded: %s\n", toString(*Encoded).c_str());
  std::printf("decoded: %s\n", toString(Decoded.at(0)).c_str());
  std::printf("round-trip %s\n",
              Decoded.size() == 1 && Decoded[0] == Input ? "OK" : "FAILED");
  return Decoded.size() == 1 && Decoded[0] == Input ? 0 : 1;
}
