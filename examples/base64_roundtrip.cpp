//===- examples/base64_roundtrip.cpp - Inverting the Figure 2 encoder -----===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's headline demo: load the BASE64 encoder of Figure 2, prove it
/// injective, synthesize the decoder (Figure 3), and use the synthesized
/// decoder on real data — cross-checked against the native oracle.
///
//===----------------------------------------------------------------------===//

#include "coders/Corpus.h"
#include "genic/Genic.h"

#include <cstdio>
#include <string>

using namespace genic;

namespace {

ValueList bytesOf(const std::string &Text) {
  ValueList Out;
  for (unsigned char C : Text)
    Out.push_back(Value::bitVecVal(C, 8));
  return Out;
}

std::string textOf(const ValueList &Symbols) {
  std::string Out;
  for (const Value &V : Symbols)
    Out.push_back(static_cast<char>(V.getBits()));
  return Out;
}

} // namespace

int main() {
  const CoderSpec &Spec = coderCorpus()[0]; // BASE64 encoder
  std::printf("inverting the %s (Figure 2)...\n", Spec.name().c_str());

  GenicTool Tool;
  Result<GenicReport> Report = Tool.run(Spec.Source);
  if (!Report) {
    std::fprintf(stderr, "error: %s\n", Report.status().message().c_str());
    return 1;
  }
  std::printf("  injective: %s (%.2fs)   inverted: %s (%.2fs, max rule "
              "%.2fs)\n\n",
              Report->Injectivity->Injective ? "yes" : "no",
              Report->Timings.InjectivitySeconds,
              Report->Inversion->complete() ? "yes" : "partially",
              Report->Timings.InversionSeconds, Report->Inversion->maxRuleSeconds());

  // Encode the Figure 1 example with the GENIC machine and decode it with
  // the synthesized inverse.
  for (const std::string &Text :
       {std::string("Man"), std::string("M"), std::string("Ma"),
        std::string("any carnal pleasure")}) {
    ValueList Input = bytesOf(Text);
    auto Encoded = Report->Machine->transduceFunctional(Input);
    if (!Encoded) {
      std::fprintf(stderr, "encoder rejected %s\n", Text.c_str());
      return 1;
    }
    auto Decoded = Report->InverseMachine->transduce(*Encoded, 2);
    bool Ok = Decoded.size() == 1 && Decoded[0] == Input;
    std::printf("  %-22s -> %-28s -> %s  [%s]\n",
                ("\"" + Text + "\"").c_str(), textOf(*Encoded).c_str(),
                ("\"" + textOf(Decoded.at(0)) + "\"").c_str(),
                Ok ? "OK" : "FAILED");
    if (!Ok)
      return 1;

    // Cross-check the synthesized decoder against the native oracle.
    Symbols Chars;
    for (const Value &V : *Encoded)
      Chars.push_back(V.getBits());
    MaybeSymbols OracleBytes = base64Decode(Chars);
    if (!OracleBytes || bytesOf(textOf(Decoded[0])) != Input) {
      std::fprintf(stderr, "oracle disagreement!\n");
      return 1;
    }
  }

  std::printf("\n--- synthesized decoder (%zu bytes of GENIC source) ---\n%s",
              Report->InverseSourceBytes, Report->InverseSource.c_str());
  return 0;
}
