//===- examples/base64_roundtrip.cpp - Inverting the Figure 2 encoder -----===//
//
// Part of the genic project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's headline demo: load the BASE64 encoder of Figure 2, prove it
/// injective, synthesize the decoder (Figure 3), and use the synthesized
/// decoder on real data — run as a deployed codec through the compiled
/// streaming runtime (fed a few bytes at a time, the way a network decoder
/// would see it), cross-checked against the term evaluator and the native
/// oracle.
///
//===----------------------------------------------------------------------===//

#include "coders/Corpus.h"
#include "engine/InversionEngine.h"
#include "runtime/StreamDecoder.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace genic;

namespace {

ValueList bytesOf(const std::string &Text) {
  ValueList Out;
  for (unsigned char C : Text)
    Out.push_back(Value::bitVecVal(C, 8));
  return Out;
}

std::string textOf(const ValueList &Symbols) {
  std::string Out;
  for (const Value &V : Symbols)
    Out.push_back(static_cast<char>(V.getBits()));
  return Out;
}

} // namespace

int main() {
  const CoderSpec &Spec = coderCorpus()[0]; // BASE64 encoder
  std::printf("inverting the %s (Figure 2)...\n", Spec.name().c_str());

  GenicTool Tool;
  Result<GenicReport> Report = Tool.run(Spec.Source);
  if (!Report) {
    std::fprintf(stderr, "error: %s\n", Report.status().message().c_str());
    return 1;
  }
  std::printf("  injective: %s (%.2fs)   inverted: %s (%.2fs, max rule "
              "%.2fs)\n\n",
              Report->Injectivity->Injective ? "yes" : "no",
              Report->Timings.InjectivitySeconds,
              Report->Inversion->complete() ? "yes" : "partially",
              Report->Timings.InversionSeconds, Report->Inversion->maxRuleSeconds());

  // Lower the synthesized decoder to bytecode once; every stream below
  // reuses the same compiled machine.
  Result<CompiledSeft> Compiled = CompiledSeft::compile(*Report->InverseMachine);
  if (!Compiled) {
    std::fprintf(stderr, "error: %s\n", Compiled.status().message().c_str());
    return 1;
  }
  StreamDecoder Decoder(*Compiled);

  // Encode the Figure 1 example with the GENIC machine, then decode it by
  // STREAMING the base64 text through the compiled inverse 3 bytes at a
  // time — the decoder carries only O(lookahead) state between feeds.
  for (const std::string &Text :
       {std::string("Man"), std::string("M"), std::string("Ma"),
        std::string("any carnal pleasure")}) {
    ValueList Input = bytesOf(Text);
    auto Encoded = Report->Machine->transduceFunctional(Input);
    if (!Encoded) {
      std::fprintf(stderr, "encoder rejected %s\n", Text.c_str());
      return 1;
    }
    std::string EncodedText = textOf(*Encoded);

    Decoder.reset();
    std::vector<uint8_t> DecodedBytes;
    Status S = Status::ok();
    for (size_t Pos = 0; S.isOk() && Pos < EncodedText.size(); Pos += 3) {
      size_t N = std::min<size_t>(3, EncodedText.size() - Pos);
      S = Decoder.feed(
          std::span<const uint8_t>(
              reinterpret_cast<const uint8_t *>(EncodedText.data()) + Pos, N),
          DecodedBytes);
    }
    if (S.isOk())
      S = Decoder.finish(DecodedBytes);
    if (!S.isOk()) {
      std::fprintf(stderr, "decoder rejected %s: %s\n", EncodedText.c_str(),
                   S.message().c_str());
      return 1;
    }
    std::string Decoded(DecodedBytes.begin(), DecodedBytes.end());

    bool Ok = Decoded == Text;
    std::printf("  %-22s -> %-28s -> %s  [%s]\n",
                ("\"" + Text + "\"").c_str(), EncodedText.c_str(),
                ("\"" + Decoded + "\"").c_str(), Ok ? "OK" : "FAILED");
    if (!Ok)
      return 1;

    // Cross-check the streamed result against the term evaluator (the
    // verification path the runtime compiles away) and the native oracle.
    auto EvalDecoded = Report->InverseMachine->transduce(*Encoded, 2);
    if (EvalDecoded.size() != 1 || EvalDecoded[0] != Input) {
      std::fprintf(stderr, "evaluator disagreement!\n");
      return 1;
    }
    Symbols Chars;
    for (const Value &V : *Encoded)
      Chars.push_back(V.getBits());
    MaybeSymbols OracleBytes = base64Decode(Chars);
    if (!OracleBytes || bytesOf(Decoded) != Input) {
      std::fprintf(stderr, "oracle disagreement!\n");
      return 1;
    }
  }

  const StreamDecoder::Stats &DS = Decoder.stats();
  std::printf("\n  last stream: %llu -> %llu bytes in %llu chunks, "
              "%llu rules fired (%u of %u rules on the fused tier)\n",
              (unsigned long long)DS.BytesIn, (unsigned long long)DS.BytesOut,
              (unsigned long long)DS.Chunks, (unsigned long long)DS.RulesFired,
              Compiled->fusedRules(), Compiled->numRules());

  std::printf("\n--- synthesized decoder (%zu bytes of GENIC source) ---\n%s",
              Report->InverseSourceBytes, Report->InverseSource.c_str());
  return 0;
}
